"""The deterministic heart of service mode: a resident fabric.

A :class:`FabricService` owns one complete simulated memory fabric —
topology, routing, :class:`~repro.network.simulator.NetworkSimulator`,
:class:`~repro.memory.address.AddressMapper`,
:class:`~repro.memory.migration.PageDirectory`, banked DRAM nodes, and
the full elasticity/migration/fault stack of PRs 2–5 — and exposes it
as a request-serving system instead of a batch scenario.

**Sequencing invariant.**  The core never reads a wall clock.  All
external inputs enter through exactly two methods and only *between*
event-loop runs:

* :meth:`submit` — one read/write page request, stamped at the current
  simulated cycle and appended to the request log;
* the control verbs (:meth:`scale_down`, :meth:`scale_up`,
  :meth:`inject_fault`, :meth:`drain`) — likewise stamped and logged.

Callers alternate ``advance_to(t)`` / ``submit(...)`` so every
submission happens at a quiescent cycle boundary.  Under that
discipline the service's evolution — per-request latencies, admission
decisions, SimStats counters, page placement — is a pure function of
the ordered log, which is what makes :func:`repro.service.log.replay`
bit-identical and the asyncio frontier testable.

**Admission control.**  Requests are injected immediately while the
fabric has headroom; near saturation they queue (bounded FIFO) and past
the queue bound they shed.  Headroom is judged on the PR-4 O(1)
counters: a global in-flight request budget (``max_outstanding``) plus
a per-destination watermark on ``sim.inflight_to(node)`` so one hot
node cannot absorb the whole budget.  Per-tenant accounting (submitted
/ completed / shed / queued / failed plus exact p50/p99 latency via
:class:`~repro.network.stats.QuantileSketch`) is kept per stream.

**Conservation.**  At drain the invariants of every prior PR are
checked together: ``sent == delivered + dropped``, page-directory
one-place conservation, and — new here — request conservation: every
submitted request ends exactly one way (done / shed / failed /
timeout), ``outstanding == 0``.
"""

from __future__ import annotations

import hashlib
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.network.packet import Packet, PacketKind

__all__ = ["FabricService", "ServiceRequest", "TenantStats"]

#: Request packets carry address + tag in a 16-byte header.
REQUEST_HEADER_BYTES = 16

#: Terminal request states (``ServiceRequest.status`` values).
TERMINAL_STATES = ("done", "shed", "failed", "timeout", "error")


@dataclass
class ServiceRequest:
    """One client read/write request moving through the fabric.

    ``latency`` is end-to-end simulated cycles from :attr:`t_submit`
    (admission) to completion — it includes any admission-queue wait,
    the network round trip, DRAM service, and migration stalls, which
    is what a client actually observes.
    """

    seq: int
    tenant: str
    op: str
    page: int
    offset: int
    size: int
    t_submit: int
    req_id: Any = None
    #: Traffic class id (tenant-derived under QoS; 0 when classless).
    tclass: int = 0
    status: str = "pending"
    t_inject: int | None = None
    t_done: int | None = None
    latency: int | None = None
    error: str | None = None
    src_node: int | None = None
    #: Completion callback (set by the frontier); fired exactly once.
    on_done: Callable[["ServiceRequest"], None] | None = field(
        default=None, repr=False, compare=False
    )

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe view of the request (wire responses, tests)."""
        return {
            "seq": self.seq,
            "tenant": self.tenant,
            "op": self.op,
            "page": self.page,
            "offset": self.offset,
            "size": self.size,
            "t_submit": self.t_submit,
            "req_id": self.req_id,
            "status": self.status,
            "latency": self.latency,
            "error": self.error,
        }


@dataclass
class TenantStats:
    """Per-stream accounting: request counts and exact percentiles."""

    name: str
    submitted: int = 0
    completed: int = 0
    shed: int = 0
    failed: int = 0
    queued: int = 0
    reads: int = 0
    writes: int = 0
    local_ops: int = 0
    bytes_moved: int = 0
    sketch: Any = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.sketch is None:
            from repro.network.stats import QuantileSketch

            self.sketch = QuantileSketch()

    def record_latency(self, latency: int) -> None:
        """Fold one completed-request latency into the sketch."""
        self.sketch.add(latency)

    def p50(self) -> float:
        """Median completed-request latency (cycles)."""
        return self.sketch.percentile(50)

    def p99(self) -> float:
        """99th-percentile completed-request latency (cycles)."""
        return self.sketch.percentile(99)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe snapshot (the ``stats`` verb's per-tenant block)."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "shed": self.shed,
            "failed": self.failed,
            "queued": self.queued,
            "reads": self.reads,
            "writes": self.writes,
            "local_ops": self.local_ops,
            "bytes_moved": self.bytes_moved,
            "p50": self.p50(),
            "p99": self.p99(),
        }


class FabricService:
    """A resident simulated memory fabric serving live request streams.

    Construction builds the full stack fresh (never memoized — control
    verbs mutate topology and routing tables): for String Figure, the
    adaptive greediest router, the online reconfiguration pipeline with
    real page migration, and the fault detection/repair/recovery stack;
    for baseline designs the same minus the ``scale`` verb (live
    reconfiguration requires shortcut wires).

    The constructor parameters are all JSON-safe and round-trip through
    :meth:`config_dict` / :meth:`from_config`, which is how a captured
    request log rebuilds an identical service for replay.
    """

    def __init__(
        self,
        nodes: int = 144,
        design: str = "SF",
        ports: int | None = None,
        topology_seed: int = 0,
        seed: int = 0,
        footprint_pages: int = 512,
        page_bytes: int = 4096,
        mirrored: bool = True,
        max_outstanding: int = 256,
        queue_depth: int = 512,
        node_watermark: int = 32,
        request_timeout: int = 50_000,
        pump_interval: int = 16,
        reaper_interval: int = 2_000,
        mig_rate_limit: float = 64.0,
        detection_timeout: int = 200,
        retransmit_timeout: int = 64,
        max_retries: int = 8,
        qos: bool = False,
        tenant_classes: dict[str, int] | None = None,
        slow_log_threshold: int | None = None,
        slow_log_size: int = 256,
    ) -> None:
        from repro.core.reconfig import ReconfigurationManager
        from repro.core.routing import AdaptiveGreediestRouting
        from repro.core.topology import StringFigureTopology
        from repro.energy.power_gating import PowerManager
        from repro.faults.detector import FaultDetector, GraphRepair, TableRepair
        from repro.faults.injector import FaultInjector
        from repro.faults.layer import FaultLayer
        from repro.faults.recovery import RecoveryOrchestrator
        from repro.memory.address import AddressMapper
        from repro.memory.migration import MigrationEngine, PageDirectory
        from repro.memory.node import MemoryNode
        from repro.network.config import NetworkConfig
        from repro.network.elastic import LiveReconfigurator
        from repro.network.policies import GreedyPolicy
        from repro.network.simulator import NetworkSimulator
        from repro.topologies.registry import make_topology

        if footprint_pages < 1:
            raise ValueError(
                f"footprint_pages must be >= 1, got {footprint_pages}"
            )
        self._params = {
            "nodes": nodes, "design": design, "ports": ports,
            "topology_seed": topology_seed, "seed": seed,
            "footprint_pages": footprint_pages, "page_bytes": page_bytes,
            "mirrored": mirrored, "max_outstanding": max_outstanding,
            "queue_depth": queue_depth, "node_watermark": node_watermark,
            "request_timeout": request_timeout,
            "pump_interval": pump_interval,
            "reaper_interval": reaper_interval,
            "mig_rate_limit": mig_rate_limit,
            "detection_timeout": detection_timeout,
            "retransmit_timeout": retransmit_timeout,
            "max_retries": max_retries,
            "qos": bool(qos),
            "tenant_classes": (
                dict(tenant_classes) if tenant_classes else None
            ),
            "slow_log_threshold": slow_log_threshold,
            "slow_log_size": slow_log_size,
        }
        config = NetworkConfig(emergency_stall_threshold=16)
        topology = make_topology(
            design, nodes, seed=topology_seed, ports=ports
        )
        self.topology = topology
        is_sf = (
            isinstance(topology, StringFigureTopology)
            and topology.with_shortcuts
        )
        manager = None
        if is_sf:
            routing = AdaptiveGreediestRouting(topology)
            policy = GreedyPolicy(routing)
        else:
            policy = topology.make_policy(adaptive=True)
        self.sim = NetworkSimulator(topology, policy, config, sample_free=True)
        #: Installed QoS class table (None = classless; the classless
        #: request path, admission, digests, and replay stay
        #: bit-identical to the pre-QoS service).
        self._qos = None
        background_class = 0
        if qos:
            from repro.network.qos import BACKGROUND_CLASS, QoSConfig

            self._qos = QoSConfig.default()
            self.sim.install_qos(self._qos)
            background_class = BACKGROUND_CLASS
        #: Tenant name -> class id; unmapped tenants ride the default
        #: (latency-critical) class 0.
        self.tenant_classes: dict[str, int] = dict(tenant_classes or {})
        self.layer = FaultLayer(
            self.sim,
            retransmit_timeout=retransmit_timeout,
            max_retries=max_retries,
            # Retry storms are shaped below foreground traffic.
            retransmit_class=background_class if qos else None,
        )

        active = list(topology.active_nodes)
        self.mapper = AddressMapper(active, interleave_bytes=page_bytes)
        self.directory = PageDirectory()
        self.directory.populate(self.mapper, footprint_pages)
        self._memory_nodes: dict[int, MemoryNode] = {}
        self._config = config
        self._MemoryNode = MemoryNode
        self.engine = MigrationEngine(
            self.sim,
            self.mapper,
            self.directory,
            self.memory_node,
            rate_limit_bytes_per_cycle=mig_rate_limit,
            # Page moves are bulk background work under a class table.
            tclass=background_class,
        )
        self.live = None
        if is_sf:
            manager = ReconfigurationManager(topology, routing)
            power = PowerManager(manager, config=config)
            self.live = LiveReconfigurator(
                self.sim, manager, policy, power=power, migrator=self.engine
            )
            repair = TableRepair(routing, policy)
        else:
            repair = GraphRepair(self.sim, topology, self.layer)
        self.recovery = RecoveryOrchestrator(
            self.sim,
            self.layer,
            live=self.live,
            graph_repair=None if is_sf else repair,
            engine=self.engine,
            directory=self.directory,
            mirrored=mirrored,
        )
        self.detector = FaultDetector(
            self.sim, self.layer, repair,
            recovery=self.recovery, live=self.live,
            detection_timeout=detection_timeout,
        )
        self.fault_injector = FaultInjector(
            self.sim, self.layer, self.detector, topology,
            manager=manager, seed=seed,
        )
        self.sim.on_delivery(self._on_delivery)

        self.footprint_pages = footprint_pages
        self.page_bytes = page_bytes
        self.max_outstanding = max_outstanding
        self.queue_depth = queue_depth
        self.node_watermark = node_watermark
        self.request_timeout = request_timeout
        self.pump_interval = pump_interval
        self.reaper_interval = reaper_interval

        self.admitting = True
        self.outstanding = 0
        self.tenants: dict[str, TenantStats] = {}
        self.log_entries: list[dict[str, Any]] = []
        #: (seq, status, latency) in completion order — the digest feed.
        self.completions: list[tuple[int, str, int | None]] = []
        self.forwarded = 0
        self.stalled = 0
        self.shed_total = 0
        self.queued_total = 0
        self.timeouts = 0
        self._next_seq = 0
        self._pending: dict[int, ServiceRequest] = {}
        self._queue: deque[ServiceRequest] = deque()
        self._pump_scheduled = False
        self._reaper_scheduled = False
        self._gated: list[int] = []
        #: Queued-request count per traffic class (QoS admission only).
        self._queued_by_class: dict[int, int] = {}
        #: Per-class SLO accounting (QoS only): completions, sheds, and
        #: exact latency sketches, keyed by class id.
        self._class_completed: dict[int, int] = {}
        self._class_shed: dict[int, int] = {}
        self._class_sketches: dict[int, Any] = {}
        if self._qos is not None:
            from repro.network.stats import QuantileSketch

            for cls in self._qos.classes:
                self._queued_by_class[cls.id] = 0
                self._class_completed[cls.id] = 0
                self._class_shed[cls.id] = 0
                self._class_sketches[cls.id] = QuantileSketch()
        #: Installed observability probes (see :meth:`install_probes`);
        #: None keeps the service entirely uninstrumented.
        self.probes = None
        #: Slow-request log: completed requests whose end-to-end latency
        #: reached ``slow_log_threshold`` land here (bounded ring) with
        #: a full delay breakdown when the anatomy is installed.  None
        #: threshold disables the log entirely.
        self.slow_log_threshold = slow_log_threshold
        self.slow_log: deque[dict[str, Any]] = deque(
            maxlen=max(1, slow_log_size)
        )
        self.slow_log_total = 0
        #: Callback fired with each slow-request record as it is logged
        #: (the daemon's ``--slow-log`` stream); None = ring only.
        self.on_slow: Callable[[dict[str, Any]], None] | None = None

    # -- construction helpers ----------------------------------------------

    def config_dict(self) -> dict[str, Any]:
        """The constructor parameters, JSON-safe (the capture header)."""
        return dict(self._params)

    @classmethod
    def from_config(cls, params: dict[str, Any]) -> "FabricService":
        """Rebuild a service identical to one captured in a log header."""
        return cls(**params)

    def memory_node(self, node_id: int):
        """The banked DRAM controller of *node_id* (created on demand)."""
        node = self._memory_nodes.get(node_id)
        if node is None:
            node = self._MemoryNode(node_id, self.sim, self._config)
            self._memory_nodes[node_id] = node
        return node

    # -- time ----------------------------------------------------------------

    def advance_to(self, t: int) -> None:
        """Run the event loop up to simulated cycle *t* (inclusive)."""
        if t > self.sim.now:
            self.sim.run(until=t)

    def advance(self, cycles: int) -> None:
        """Run the event loop *cycles* beyond the current cycle."""
        self.advance_to(self.sim.now + cycles)

    # -- request path --------------------------------------------------------

    def tenant(self, name: str) -> TenantStats:
        """The accounting record for tenant *name* (created on demand)."""
        stats = self.tenants.get(name)
        if stats is None:
            stats = TenantStats(name)
            self.tenants[name] = stats
        return stats

    def submit(
        self,
        tenant: str,
        op: str,
        page: int,
        offset: int = 0,
        size: int | None = None,
        req_id: Any = None,
        on_done: Callable[[ServiceRequest], None] | None = None,
    ) -> ServiceRequest:
        """Admit one read/write request at the current simulated cycle.

        Must be called between event-loop runs (the sequencing
        invariant in the module docstring).  The request is logged,
        validated, then either injected, queued, or shed; ``on_done``
        fires exactly once when the request reaches a terminal state —
        possibly synchronously (validation error or shed).
        """
        now = self.sim.now
        if size is None:
            size = self._config.cacheline_bytes
        self.log_entries.append({
            "kind": "request", "t": now, "tenant": tenant, "op": op,
            "page": page, "offset": offset, "size": size, "req_id": req_id,
        })
        stats = self.tenant(tenant)
        stats.submitted += 1
        request = ServiceRequest(
            seq=self._next_seq, tenant=tenant, op=op, page=int(page),
            offset=int(offset), size=int(size), t_submit=now,
            req_id=req_id, tclass=self.class_of_tenant(tenant),
            on_done=on_done,
        )
        self._next_seq += 1

        error = self._validate(request)
        if error is not None:
            self._finish(request, now, "error", error)
            return request
        if op == "read":
            stats.reads += 1
        else:
            stats.writes += 1
        if not self.admitting:
            self._shed(request, now, "draining")
            return request
        # FIFO fairness: once anything queues, new arrivals go behind
        # it.  Under QoS the fairness gate is per class — a queued bulk
        # backlog must not block a latency-class request that still has
        # headroom under its own (larger) budget.
        if self._qos is not None:
            blocked = self._queued_by_class.get(request.tclass, 0) > 0
        else:
            blocked = bool(self._queue)
        if blocked or not self._has_headroom(request):
            if len(self._queue) < self.queue_depth:
                request.status = "queued"
                self._queue.append(request)
                self._pending[request.seq] = request
                stats.queued += 1
                self.queued_total += 1
                if self._qos is not None:
                    self._queued_by_class[request.tclass] = (
                        self._queued_by_class.get(request.tclass, 0) + 1
                    )
                self._ensure_pump(now)
                self._ensure_reaper(now)
            else:
                self._shed(request, now, "overload")
            return request
        self._inject(request, now)
        return request

    def class_of_tenant(self, tenant: str) -> int:
        """The traffic class of *tenant* (0 — latency — when unmapped
        or classless)."""
        if self._qos is None:
            return 0
        cls = int(self.tenant_classes.get(tenant, 0))
        return cls if 0 <= cls < self._qos.num_classes else 0

    def _validate(self, request: ServiceRequest) -> str | None:
        if request.op not in ("read", "write"):
            return f"unknown op {request.op!r}"
        if not 0 <= request.page < self.footprint_pages:
            return (
                f"page {request.page} out of range "
                f"[0, {self.footprint_pages})"
            )
        if request.offset < 0 or request.size < 1:
            return "offset must be >= 0 and size >= 1"
        if request.offset + request.size > self.page_bytes:
            return (
                f"offset+size ({request.offset + request.size}) exceeds "
                f"page size ({self.page_bytes})"
            )
        return None

    def _has_headroom(self, request: ServiceRequest) -> bool:
        budget = self.max_outstanding
        if self._qos is not None:
            # Class-aware admission: each priority band sees a halved
            # outstanding budget (p0 full, p1 half, p2 quarter...), so
            # under overload bulk queues and sheds first while
            # priority tenants keep admitting.
            priority = self._qos.class_of(request.tclass).priority
            budget = max(1, budget >> priority)
        if self.outstanding >= budget:
            return False
        target = self.directory.resolve(request.page)
        return self.sim.inflight_to(target) < self.node_watermark

    def _shed(self, request: ServiceRequest, now: int, reason: str) -> None:
        self.shed_total += 1
        self.tenant(request.tenant).shed += 1
        if self._qos is not None:
            self._class_shed[request.tclass] = (
                self._class_shed.get(request.tclass, 0) + 1
            )
        self._finish(request, now, "shed", reason, count_shed=False)

    def _pick_source(self, tenant: str) -> int | None:
        """A stable, currently-usable injection node for *tenant*.

        The tenant hashes (CRC32 — stable across processes, unlike
        ``hash``) onto a ring position; if that node is gated, crashed,
        or hung, the next usable ring node takes over.  The ring is
        derived from the topology's *current* active set on every pick:
        a ring frozen at construction kept hashing tenants onto the
        pre-scale node count, so tenants first seen after an unmount or
        a scale-up landed on stale positions (and could map onto
        excised nodes forever).  Deterministic given identical fabric
        state, which replay guarantees.
        """
        ring = sorted(self.topology.active_nodes)
        if not ring:
            return None
        start = zlib.crc32(tenant.encode()) % len(ring)
        for step in range(len(ring)):
            node = ring[(start + step) % len(ring)]
            if not self.layer.usable_source(node):
                continue
            if self.live is not None and not self.live.usable(node):
                continue
            return node
        return None

    def _inject(self, request: ServiceRequest, now: int) -> None:
        src = self._pick_source(request.tenant)
        if src is None:
            self._shed(request, now, "no_usable_source")
            return
        request.src_node = src
        request.status = "inflight"
        request.t_inject = now
        self._pending[request.seq] = request
        self.outstanding += 1
        self._ensure_reaper(now)
        target = self.directory.resolve(request.page)
        if target == src:
            ruling, _ = self.directory.arrival_ruling(src, request.page)
            if ruling == "stall":
                self.stalled += 1
                self.directory.when_landed(
                    request.page,
                    lambda t, r=request, n=src: self._serve(n, r, t),
                )
            elif ruling == "lost":
                self._fail(request, now, "page_lost")
            else:
                self.tenant(request.tenant).local_ops += 1
                self._serve(src, request, now)
            return
        self._send_request(src, target, request, now)

    def _send_request(
        self, src: int, dst: int, request: ServiceRequest, now: int
    ) -> None:
        payload = REQUEST_HEADER_BYTES
        if request.op == "write":
            payload += request.size
        packet = Packet(
            src=src,
            dst=dst,
            size_flits=self._config.packet_flits(payload),
            payload_bytes=payload,
            kind=(
                PacketKind.READ_REQ if request.op == "read"
                else PacketKind.WRITE_REQ
            ),
            tclass=request.tclass,
            measured=True,
            context=("svc", request.seq),
        )
        self.sim.send(packet, now)

    # -- delivery ------------------------------------------------------------

    def _on_delivery(self, packet: Packet, now: int) -> None:
        context = packet.context
        if not (
            isinstance(context, tuple) and len(context) == 2
            and context[0] == "svc"
        ):
            return
        request = self._pending.get(context[1])
        if request is None or request.status != "inflight":
            return  # timed out or already completed; late packet ignored
        if packet.kind in (PacketKind.READ_RESP, PacketKind.WRITE_ACK):
            self._complete(request, now)
            return
        if packet.kind not in (PacketKind.READ_REQ, PacketKind.WRITE_REQ):
            return
        node = packet.dst
        ruling, target = self.directory.arrival_ruling(node, request.page)
        if ruling == "serve":
            self._serve(node, request, now)
        elif ruling == "stall":
            self.stalled += 1
            self.directory.when_landed(
                request.page,
                lambda t, n=node, r=request: self._serve(n, r, t),
            )
        elif ruling == "forward":
            self.forwarded += 1
            self._send_request(node, target, request, now)
        else:  # lost: the page died with an unrecovered crash
            self._fail(request, now, "page_lost")

    def _serve(self, node: int, request: ServiceRequest, now: int) -> None:
        """DRAM-service the request at *node*, then answer its source."""
        if request.status != "inflight":
            return  # timed out while stalled on a landing page
        addr = request.page * self.page_bytes + request.offset
        done = self.memory_node(node).service_bulk(
            now, self.mapper.local_offset(addr), request.size
        )
        self.tenant(request.tenant).bytes_moved += request.size
        origin = request.src_node
        if origin == node:
            # Local page (or a forwarded request that chased the page
            # home): complete at DRAM completion, no response packet.
            self.sim.schedule(done, lambda t, r=request: self._complete(r, t))
            return
        payload = (
            request.size if request.op == "read" else REQUEST_HEADER_BYTES
        )
        response = Packet(
            src=node,
            dst=origin,
            size_flits=self._config.packet_flits(payload),
            payload_bytes=payload,
            kind=(
                PacketKind.READ_RESP if request.op == "read"
                else PacketKind.WRITE_ACK
            ),
            tclass=request.tclass,
            measured=True,
            context=("svc", request.seq),
        )
        self.sim.send(response, done)

    # -- completion ----------------------------------------------------------

    def _complete(self, request: ServiceRequest, now: int) -> None:
        if request.status != "inflight":
            return
        stats = self.tenant(request.tenant)
        stats.completed += 1
        request.latency = now - request.t_submit
        stats.record_latency(request.latency)
        if self._qos is not None:
            self._class_completed[request.tclass] = (
                self._class_completed.get(request.tclass, 0) + 1
            )
            self._class_sketches[request.tclass].add(request.latency)
        # Pop the anatomy's per-request network breakdown on *every*
        # completion (not just slow ones) so the svc index never grows;
        # failed/timed-out requests age out of its FIFO bound instead.
        anatomy = self.probes.anatomy if self.probes is not None else None
        network = (
            anatomy.take_request(request.seq) if anatomy is not None else None
        )
        threshold = self.slow_log_threshold
        if threshold is not None and request.latency >= threshold:
            record = self._slow_record(request, now, network)
            self.slow_log.append(record)
            self.slow_log_total += 1
            if self.on_slow is not None:
                self.on_slow(record)
        self._finish(request, now, "done")

    def _slow_record(
        self,
        request: ServiceRequest,
        now: int,
        network: dict[str, int] | None,
    ) -> dict[str, Any]:
        """One slow-request log line: identity + full delay anatomy.

        ``admission`` is submit-to-inject (queue wait), the network
        components come from the anatomy (summed over every request
        leg), and ``dram`` is the exact remainder — DRAM service plus
        any directory stall — so the parts always sum to ``latency``.
        """
        latency = request.latency or 0
        admission = (
            request.t_inject - request.t_submit
            if request.t_inject is not None else 0
        )
        network_total = sum(network.values()) if network else 0
        record: dict[str, Any] = {
            "seq": request.seq,
            "tenant": request.tenant,
            "op": request.op,
            "page": request.page,
            "size": request.size,
            "src_node": request.src_node,
            "t_submit": request.t_submit,
            "t_done": now,
            "latency": latency,
            "admission": admission,
            "network": network_total,
            "dram": latency - admission - network_total,
        }
        if network is not None:
            record["components"] = network
        if self._qos is not None:
            record["tclass"] = self._qos.class_of(request.tclass).name
        return record

    def _fail(self, request: ServiceRequest, now: int, reason: str) -> None:
        self.tenant(request.tenant).failed += 1
        self._finish(request, now, "failed", reason)

    def _finish(
        self,
        request: ServiceRequest,
        now: int,
        status: str,
        error: str | None = None,
        count_shed: bool = True,
    ) -> None:
        """Move *request* to a terminal state and fire its callback."""
        was_inflight = request.status == "inflight"
        request.status = status
        request.t_done = now
        request.error = error
        self._pending.pop(request.seq, None)
        if was_inflight:
            self.outstanding -= 1
        self.completions.append((request.seq, status, request.latency))
        if request.on_done is not None:
            callback, request.on_done = request.on_done, None
            callback(request)
        if was_inflight:
            self._pump_queue(now)

    # -- admission queue -----------------------------------------------------

    def _ensure_pump(self, now: int) -> None:
        if not self._pump_scheduled and self._queue:
            self._pump_scheduled = True
            self.sim.schedule(now + self.pump_interval, self._pump_event)

    def _pump_event(self, now: int) -> None:
        self._pump_scheduled = False
        self._pump_queue(now)
        self._ensure_pump(now)

    def _pump_queue(self, now: int) -> None:
        """Inject queued requests while headroom lasts (FIFO order).

        Classless: strict FIFO — the head blocks everything behind it.
        Under QoS the pump scans the whole queue once (FIFO *within*
        each class): a latency-class request overtakes a bulk backlog
        that has exhausted its smaller budget, which is the
        work-conserving counterpart of the per-class admission gate.
        """
        if self._qos is None:
            while self._queue:
                head = self._queue[0]
                if not self._has_headroom(head):
                    break
                self._queue.popleft()
                self._inject(head, now)
            return
        retained: deque[ServiceRequest] = deque()
        while self._queue:
            head = self._queue.popleft()
            if self._has_headroom(head):
                self._queued_by_class[head.tclass] -= 1
                self._inject(head, now)
            else:
                retained.append(head)
        self._queue = retained

    def _ensure_reaper(self, now: int) -> None:
        if not self._reaper_scheduled and (self.outstanding or self._queue):
            self._reaper_scheduled = True
            self.sim.schedule(now + self.reaper_interval, self._reaper_event)

    def _reaper_event(self, now: int) -> None:
        """Time out requests stuck past ``request_timeout`` cycles.

        One periodic event scans the pending set instead of one timer
        per request, so an idle service holds zero timer events and
        drains never gallop through stale timers.  A timed-out
        request's late response is ignored on arrival (the pending-map
        lookup misses), keeping packet conservation intact.
        """
        self._reaper_scheduled = False
        expired = [
            r for r in self._pending.values()
            if now - r.t_submit >= self.request_timeout
            and r.status in ("inflight", "queued")
        ]
        for request in sorted(expired, key=lambda r: r.seq):
            if request.status == "queued":
                try:
                    self._queue.remove(request)
                except ValueError:
                    pass
                else:
                    if self._qos is not None:
                        self._queued_by_class[request.tclass] -= 1
            self.timeouts += 1
            self.tenant(request.tenant).failed += 1
            self._finish(request, now, "timeout", "request_timeout")
        self._ensure_reaper(now)

    # -- control verbs -------------------------------------------------------

    def scale_down(
        self,
        fraction: float | None = None,
        count: int | None = None,
        nodes: list[int] | None = None,
    ) -> dict[str, Any]:
        """Gate off nodes through the live pipeline, pages migrating out.

        Victims default to the reconfiguration manager's well-spaced
        candidates.  The operation is asynchronous inside the simulator
        (block / migrate / switch / revalidate / unblock); poll
        ``stats`` for ``active_nodes`` to observe completion.
        """
        if self.live is None:
            return {"ok": False, "error": "scale requires a String Figure fabric"}
        if nodes is None:
            victims = self.live.select_victims(fraction=fraction, count=count)
        else:
            victims = list(nodes)
        if not victims:
            return {"ok": False, "error": "no gateable victims"}
        self.log_entries.append({
            "kind": "control", "t": self.sim.now, "verb": "scale_down",
            "nodes": list(victims),
        })
        self._gated.extend(victims)
        self.live.gate_off(victims)
        return {"ok": True, "verb": "scale_down", "nodes": list(victims)}

    def scale_up(self, nodes: list[int] | None = None) -> dict[str, Any]:
        """Wake previously gated nodes, pages migrating back in."""
        if self.live is None:
            return {"ok": False, "error": "scale requires a String Figure fabric"}
        victims = list(self._gated) if nodes is None else list(nodes)
        if not victims:
            return {"ok": False, "error": "no gated nodes to wake"}
        self.log_entries.append({
            "kind": "control", "t": self.sim.now, "verb": "scale_up",
            "nodes": list(victims),
        })
        self._gated = [n for n in self._gated if n not in set(victims)]
        self.live.gate_on(victims)
        return {"ok": True, "verb": "scale_up", "nodes": list(victims)}

    def inject_fault(
        self,
        kind: str,
        node: int | None = None,
        link: list[int] | tuple[int, int] | None = None,
        duration: int = 0,
    ) -> dict[str, Any]:
        """Fire one unplanned fault (PR-5 stack) at the current cycle."""
        from repro.faults.injector import FaultEvent, FaultPlan

        try:
            event = FaultEvent(
                time=self.sim.now,
                kind=kind,
                node=node,
                link=tuple(link) if link is not None else None,
                duration=duration,
            )
        except ValueError as exc:
            return {"ok": False, "error": str(exc)}
        self.log_entries.append({
            "kind": "control", "t": self.sim.now, "verb": "fault",
            "fault_kind": kind, "node": node,
            "link": list(link) if link is not None else None,
            "duration": duration,
        })
        self.fault_injector.apply(FaultPlan([event]))
        return {"ok": True, "verb": "fault", "fault_kind": kind}

    def apply_control(self, entry: dict[str, Any]) -> dict[str, Any]:
        """Apply one logged control entry (the replay dispatcher)."""
        verb = entry["verb"]
        if verb == "scale_down":
            return self.scale_down(
                fraction=entry.get("fraction"),
                count=entry.get("count"),
                nodes=entry.get("nodes"),
            )
        if verb == "scale_up":
            return self.scale_up(nodes=entry.get("nodes"))
        if verb == "fault":
            return self.inject_fault(
                entry["fault_kind"], node=entry.get("node"),
                link=entry.get("link"), duration=entry.get("duration", 0),
            )
        if verb == "drain":
            return self.drain()
        raise ValueError(f"unknown control verb {verb!r}")

    # -- drain / conservation ------------------------------------------------

    def drain(self, max_rounds: int = 64) -> dict[str, Any]:
        """Stop admitting, run everything to quiescence, check the laws.

        Alternates event-loop drains with fault-layer flushes (a flush
        releases credits that can re-activate blocked packets) until
        the heap is empty, the admission queue is spent, and no request
        is outstanding — then evaluates every conservation invariant.
        Admission re-opens afterwards, so an operator ``drain`` is a
        checkpoint, not a shutdown.
        """
        self.log_entries.append({
            "kind": "control", "t": self.sim.now, "verb": "drain",
        })
        self.admitting = False
        flushed = 0
        for _ in range(max_rounds):
            if self.sim.pending_events:
                self.sim.drain()
            self._pump_queue(self.sim.now)
            freed = self.layer.flush_stuck()
            flushed += freed
            if (
                not self.sim.pending_events
                and freed == 0
                and self.outstanding == 0
                and not self._queue
            ):
                break
        # Anything still queued found no headroom even at quiescence
        # (e.g. every source crashed): shed it so accounting closes.
        while self._queue:
            request = self._queue.popleft()
            if self._qos is not None:
                self._queued_by_class[request.tclass] -= 1
            self._shed(request, self.sim.now, "drain_shed")
        self.admitting = True
        stats = self.sim.stats
        report = {
            "ok": True,
            "verb": "drain",
            "now": self.sim.now,
            "flushed": flushed,
            "outstanding": self.outstanding,
            "queued": len(self._queue),
            "sent": stats.sent,
            "delivered": stats.delivered,
            "dropped": stats.dropped,
            "conserved": stats.sent == stats.delivered + stats.dropped,
            "page_conservation": self.directory.check_conservation(),
            "pages_lost": len(self.directory.lost),
            "requests_conserved": self._requests_conserved(),
        }
        report["all_conserved"] = bool(
            report["conserved"]
            and report["page_conservation"]
            and report["requests_conserved"]
            and report["outstanding"] == 0
        )
        report["latency"] = self.latency_summary()
        if not report["all_conserved"] and self.probes is not None:
            # Post-mortem: dump the bounded ring of the last simulator
            # events alongside the failed conservation report.
            tracer = self.probes.tracer
            if tracer is not None:
                report["event_ring"] = tracer.ring_dump()
        return report

    def _requests_conserved(self) -> bool:
        """Every submitted request reached exactly one terminal state."""
        submitted = sum(t.submitted for t in self.tenants.values())
        return submitted == len(self.completions) + len(self._pending)

    # -- observability -------------------------------------------------------

    def latency_summary(self) -> dict[str, Any]:
        """Per-tenant and fleet-wide completion-latency percentiles.

        The **single** latency-reporting path: the daemon's ``drain``
        report, the selftest, the offline workload payload, and the
        experiments service table all read these numbers, which come
        straight from the per-tenant ``QuantileSketch`` accumulators
        (fleet-wide percentiles via :meth:`QuantileSketch.merge`, so
        they are exact over the concatenated completion stream).
        """
        from repro.network.stats import QuantileSketch

        merged = QuantileSketch()
        per_tenant: dict[str, dict[str, float]] = {}
        for name, ts in sorted(self.tenants.items()):
            merged.merge(ts.sketch)
            per_tenant[name] = {
                "completed": ts.completed,
                "p50": ts.p50(),
                "p99": ts.p99(),
            }
        active = [t for t in per_tenant.values() if t["completed"]]
        summary = {
            "p50": merged.percentile(50),
            "p99": merged.percentile(99),
            "p50_max": max((t["p50"] for t in active), default=0.0),
            "p99_max": max((t["p99"] for t in active), default=0.0),
            "per_tenant": per_tenant,
        }
        if self._qos is not None:
            summary["per_class"] = self.class_summary()
        return summary

    def class_summary(self) -> dict[str, dict[str, float]]:
        """Per-traffic-class SLO block (empty when classless)."""
        if self._qos is None:
            return {}
        out: dict[str, dict[str, float]] = {}
        for cls in self._qos.classes:
            sketch = self._class_sketches[cls.id]
            out[cls.name] = {
                "class_id": cls.id,
                "priority": cls.priority,
                "completed": self._class_completed.get(cls.id, 0),
                "shed": self._class_shed.get(cls.id, 0),
                "queued": self._queued_by_class.get(cls.id, 0),
                "p50": sketch.percentile(50),
                "p99": sketch.percentile(99),
            }
        return out

    def install_probes(self, probes=None, anatomy: bool = True):
        """Attach observability probes across the whole service stack.

        Wires one :class:`repro.obs.FabricProbes` (a default instance
        when *probes* is None) into the simulator hot-path hooks and
        registers pull metrics for the fault detector, the migration
        engine/page directory, and the service-level counters and
        tenant sketches.  ``anatomy=True`` (the default) also installs
        the :class:`~repro.obs.anatomy.LatencyAnatomy` decomposition,
        which is what gives slow-request records their per-component
        network breakdown.  Purely observational: requests, replay
        digests, and ``SimStats`` stay bit-identical (the ``metrics``
        daemon verb installs these lazily on first scrape for exactly
        that reason — packets already in flight at install time are
        skipped whole by the anatomy).  Returns the probes object.
        """
        if probes is None:
            from repro.obs import FabricProbes

            probes = FabricProbes()
        probes.attach_sim(self.sim)
        probes.attach_detector(self.detector)
        probes.attach_migration(self.engine, self.directory)
        probes.attach_service(self)
        if anatomy:
            probes.install_anatomy()
        self.probes = probes
        return probes

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe state summary (the ``stats`` verb's response)."""
        stats = self.sim.stats
        snap: dict[str, Any] = {
            "ok": True,
            "now": self.sim.now,
            "nodes": self.topology.num_nodes,
            "active_nodes": len(self.topology.active_nodes),
            "outstanding": self.outstanding,
            "queued": len(self._queue),
            "admitting": self.admitting,
            "submitted": sum(t.submitted for t in self.tenants.values()),
            "completed": sum(t.completed for t in self.tenants.values()),
            "shed": self.shed_total,
            "queued_total": self.queued_total,
            "timeouts": self.timeouts,
            "forwarded": self.forwarded,
            "stalled": self.stalled,
            "sent": stats.sent,
            "delivered": stats.delivered,
            "dropped": stats.dropped,
            "in_flight": stats.in_flight,
            "pages": len(self.directory.pages),
            "pages_lost": len(self.directory.lost),
            "migrations": len(self.engine.records),
            "faults": len(self.fault_injector.records),
            "tenants": {
                name: ts.to_dict() for name, ts in sorted(self.tenants.items())
            },
        }
        if self._qos is not None:
            snap["qos"] = {
                "classes": self.class_summary(),
                "tenant_classes": dict(self.tenant_classes),
            }
        if self.slow_log_threshold is not None:
            snap["slow_requests"] = {
                "threshold": self.slow_log_threshold,
                "total": self.slow_log_total,
                "recent": list(self.slow_log)[-8:],
            }
        anatomy = self.probes.anatomy if self.probes is not None else None
        if anatomy is not None:
            snap["anatomy"] = anatomy.summary(top_k=3)
        return snap

    def digest(self) -> dict[str, Any]:
        """Determinism fingerprint: equal digests mean bit-identical runs.

        Hashes the full completion history (sequence, terminal state,
        latency of every request, in completion order) and folds in the
        network-level counters.  ``sim.now`` is deliberately excluded:
        the frontier may advance time past the last event while an
        offline replay stops at it, without any state differing.
        """
        h = hashlib.sha256()
        for seq, status, latency in self.completions:
            h.update(f"{seq}:{status}:{latency}\n".encode())
        stats = self.sim.stats
        out = {
            "completions": h.hexdigest(),
            "requests": len(self.completions),
            "sent": stats.sent,
            "delivered": stats.delivered,
            "dropped": stats.dropped,
            "flit_hops": stats.flit_hops,
            "bit_hops": stats.bit_hops,
            "shed": self.shed_total,
            "forwarded": self.forwarded,
            "stalled": self.stalled,
            "timeouts": self.timeouts,
            "tenants": {
                name: (ts.completed, ts.p50(), ts.p99())
                for name, ts in sorted(self.tenants.items())
            },
        }
        if self._qos is not None:
            # Classless digests stay byte-identical: the key only
            # exists when a class table is installed.
            out["classes"] = {
                cls.name: (
                    self._class_completed.get(cls.id, 0),
                    self._class_sketches[cls.id].percentile(50),
                    self._class_sketches[cls.id].percentile(99),
                )
                for cls in self._qos.classes
            }
        return out
