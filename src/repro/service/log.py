"""Request-log capture and bit-identical replay.

A :class:`~repro.service.core.FabricService` records every external
input it receives — one JSON-safe dict per request submit and per
control verb, each stamped with the simulated cycle it entered at.
Together with the constructor parameters (the *header*) that log is a
complete causal description of a run: :func:`replay` rebuilds an
identical service, :func:`drive` advances the event loop to each
recorded cycle and re-applies the entries in recorded order, and the
resulting :meth:`~repro.service.core.FabricService.digest` matches the
original bit-for-bit.

The file format is JSONL (one object per line) so logs stream, diff,
and `grep` cleanly::

    {"kind": "header", "version": 1, "config": {...constructor args...}}
    {"kind": "request", "t": 120, "tenant": "c3", "op": "read", ...}
    {"kind": "control", "t": 8000, "verb": "scale_down", "nodes": [17]}
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:
    from repro.service.core import FabricService

__all__ = ["RequestLog", "drive", "replay", "LOG_VERSION"]

#: Bumped when the capture format changes incompatibly.
LOG_VERSION = 1


class RequestLog:
    """A captured service run: config header plus ordered input entries."""

    def __init__(
        self, config: dict[str, Any], entries: list[dict[str, Any]]
    ) -> None:
        self.config = config
        self.entries = entries

    @classmethod
    def capture(cls, service: "FabricService") -> "RequestLog":
        """Snapshot *service*'s inputs so far as a replayable log."""
        return cls(service.config_dict(), list(service.log_entries))

    @classmethod
    def load(cls, path: str) -> "RequestLog":
        """Parse a JSONL capture file written by :meth:`save`."""
        config: dict[str, Any] | None = None
        entries: list[dict[str, Any]] = []
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                if record.get("kind") == "header":
                    version = record.get("version")
                    if version != LOG_VERSION:
                        raise ValueError(
                            f"unsupported log version {version!r} "
                            f"(expected {LOG_VERSION})"
                        )
                    config = record["config"]
                else:
                    entries.append(record)
        if config is None:
            raise ValueError(f"{path}: no header line in request log")
        return cls(config, entries)

    def save(self, path: str) -> None:
        """Write the log as JSONL (header first, then entries in order)."""
        with open(path, "w", encoding="utf-8") as handle:
            header = {
                "kind": "header", "version": LOG_VERSION,
                "config": self.config,
            }
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for entry in self.entries:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")


def drive(
    service: "FabricService", entries: Iterable[dict[str, Any]]
) -> None:
    """Feed ordered log *entries* into *service* at their recorded cycles.

    This is the single ingestion path shared by replay and the in-sim
    synthetic load driver: advance the event loop to each entry's
    cycle, then apply same-cycle entries in order.  Because submits
    happen only between runs, the resulting event interleaving is
    identical however the entries were originally produced (asyncio
    frontier, synthetic schedule, or a prior capture).
    """
    for entry in entries:
        service.advance_to(int(entry["t"]))
        if entry["kind"] == "request":
            service.submit(
                entry["tenant"],
                entry["op"],
                entry["page"],
                offset=entry.get("offset", 0),
                size=entry.get("size"),
                req_id=entry.get("req_id"),
            )
        elif entry["kind"] == "control":
            service.apply_control(entry)
        else:
            raise ValueError(f"unknown log entry kind {entry['kind']!r}")


def replay(
    log: "RequestLog | str", drain: bool = True
) -> "FabricService":
    """Re-run a captured log on a freshly built identical service.

    Returns the replayed service; compare its ``digest()`` against the
    original's to assert bit-identical behaviour.  With ``drain=True``
    (default) outstanding work is run to quiescence at the end unless
    the log itself already ends in a ``drain`` verb.
    """
    from repro.service.core import FabricService

    if isinstance(log, str):
        log = RequestLog.load(log)
    service = FabricService.from_config(log.config)
    drive(service, log.entries)
    ends_drained = bool(
        log.entries
        and log.entries[-1].get("kind") == "control"
        and log.entries[-1].get("verb") == "drain"
    )
    if drain and not ends_drained:
        service.drain()
    return service
