"""Memory-network power management (paper §III-C and §VI).

The power manager sits on top of the reconfiguration manager and adds
the paper's operational constraints:

* link/router **sleep latency** of 680 ns and **wake-up latency** of
  5 µs (conservative values from prior memory-network work);
* a **reconfiguration granularity** — the minimum allowed interval
  between reconfigurations — of 100 µs, so reconfiguration overheads
  cannot dominate;
* victim selection through the reconfiguration manager's
  cleanly-gateable analysis, so the space-0 ring patching invariant
  holds and routing remains loop-free and delivery-guaranteed.

Gating a fraction of the network reduces dynamic energy (shorter paths
on the smaller network and fewer powered links) at some performance
cost; Figure 9(b) tracks the resulting EDP, which this module's
accounting feeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.reconfig import ReconfigEvent, ReconfigurationManager
from repro.network.config import NetworkConfig

__all__ = ["PowerGatingPlan", "PowerManager"]

SLEEP_LATENCY_NS = 680.0
WAKE_LATENCY_NS = 5_000.0
RECONFIG_GRANULARITY_NS = 100_000.0


@dataclass
class PowerGatingPlan:
    """Outcome of one power-management action."""

    gated: list[int] = field(default_factory=list)
    woken: list[int] = field(default_factory=list)
    events: list[ReconfigEvent] = field(default_factory=list)
    overhead_ns: float = 0.0

    @property
    def overhead_cycles(self) -> int:
        config = NetworkConfig()
        return config.cycles_from_ns(self.overhead_ns) if self.overhead_ns else 0


class PowerManager:
    """Drives dynamic network scale changes under timing constraints."""

    def __init__(
        self,
        manager: ReconfigurationManager,
        config: NetworkConfig | None = None,
        sleep_ns: float = SLEEP_LATENCY_NS,
        wake_ns: float = WAKE_LATENCY_NS,
        granularity_ns: float = RECONFIG_GRANULARITY_NS,
    ) -> None:
        self.manager = manager
        self.config = config or NetworkConfig()
        self.sleep_ns = sleep_ns
        self.wake_ns = wake_ns
        self.granularity_ns = granularity_ns
        self._last_reconfig_ns: float | None = None
        self.gated: list[int] = []

    # -- constraints ------------------------------------------------------------

    def can_reconfigure(self, now_ns: float) -> bool:
        """Whether the 100 µs reconfiguration granularity has elapsed."""
        if self._last_reconfig_ns is None:
            return True
        return now_ns - self._last_reconfig_ns >= self.granularity_ns

    def _mark(self, now_ns: float) -> None:
        self._last_reconfig_ns = now_ns

    @property
    def last_reconfig_ns(self) -> float | None:
        """When the most recent reconfiguration completed (ns), if any."""
        return self._last_reconfig_ns

    def note_reconfiguration(self, now_ns: float) -> None:
        """Record an externally executed reconfiguration (live/online path).

        The :class:`~repro.network.elastic.LiveReconfigurator` performs
        the topology changes itself inside the event loop; it calls
        this so the granularity constraint still covers those events.
        """
        self._mark(now_ns)

    # -- actions ------------------------------------------------------------------

    def gate_fraction(
        self, fraction: float, now_ns: float = 0.0, min_spacing: int = 2
    ) -> PowerGatingPlan:
        """Power off ~*fraction* of the active nodes (cleanly gateable).

        Victims come from the reconfiguration manager's well-spaced
        candidate selection; the plan records how many were actually
        gateable (dense fractions may fall short of the request — the
        plan's ``gated`` list is authoritative).
        """
        if not 0.0 <= fraction < 1.0:
            raise ValueError(f"fraction must be in [0, 1), got {fraction}")
        if not self.can_reconfigure(now_ns):
            raise RuntimeError(
                f"reconfiguration granularity violated at t={now_ns} ns"
            )
        plan = PowerGatingPlan()
        active = len(self.manager.topology.active_nodes)
        want = int(active * fraction)
        if want == 0:
            return plan
        victims = self.manager.gate_candidates(want, min_spacing=min_spacing)
        for node in victims:
            event = self.manager.power_gate(node)
            plan.events.append(event)
            plan.gated.append(node)
            self.gated.append(node)
        plan.overhead_ns = self.sleep_ns if plan.gated else 0.0
        if plan.gated:
            self._mark(now_ns)
        return plan

    def wake_all(self, now_ns: float = 0.0) -> PowerGatingPlan:
        """Bring every gated node back (pays the 5 µs wake latency)."""
        if not self.can_reconfigure(now_ns):
            raise RuntimeError(
                f"reconfiguration granularity violated at t={now_ns} ns"
            )
        plan = PowerGatingPlan()
        for node in reversed(self.gated):
            event = self.manager.power_on(node)
            plan.events.append(event)
            plan.woken.append(node)
        self.gated.clear()
        plan.overhead_ns = self.wake_ns if plan.woken else 0.0
        if plan.woken:
            self._mark(now_ns)
        return plan

    # -- accounting -----------------------------------------------------------------

    @property
    def active_fraction(self) -> float:
        """Fraction of the full network currently powered."""
        topo = self.manager.topology
        return len(topo.active_nodes) / topo.num_nodes
