"""Dynamic energy accounting and power management."""

from repro.energy.model import EnergyBreakdown, EnergyModel, radix_energy_factor
from repro.energy.power_gating import PowerGatingPlan, PowerManager

__all__ = [
    "EnergyBreakdown",
    "EnergyModel",
    "PowerGatingPlan",
    "PowerManager",
    "radix_energy_factor",
]
