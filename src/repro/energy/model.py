"""Dynamic energy model (paper Table I and §V).

Following the paper, dynamic energy is estimated with average
picojoule-per-bit constants — 5 pJ/bit/hop in the network and
12 pJ/bit for DRAM reads/writes — which gives a fair cross-topology
comparison because the only variables are bit-hops (topology/routing
dependent) and DRAM bits (workload dependent).  Static energy is
intentionally out of scope, matching the paper ("static power saving is
highly dependent on the underlying process management assumptions").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.config import NetworkConfig
from repro.network.stats import SimStats

__all__ = ["EnergyBreakdown", "EnergyModel"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Dynamic energy of one run, in picojoules."""

    network_pj: float
    dram_pj: float

    @property
    def total_pj(self) -> float:
        return self.network_pj + self.dram_pj

    @property
    def total_nj(self) -> float:
        return self.total_pj / 1e3

    def edp(self, delay_cycles: float, cycle_ns: float) -> float:
        """Energy-delay product in pJ*ns."""
        return self.total_pj * delay_cycles * cycle_ns


#: Router radix at which the paper's 5 pJ/bit/hop figure is calibrated
#: (the 8-port HMC-style router of the working example).
REFERENCE_RADIX = 8


def radix_energy_factor(radix: int) -> float:
    """Per-hop energy scaling with router radix.

    Crossbar and allocation dynamic energy grow roughly linearly with
    port count (the paper's related-work discussion cites non-linearly
    increasing router power for high-radix designs [49]); we model the
    per-bit hop energy as half link (radix-independent) and half router
    (linear in radix), normalized to 1.0 at the reference radix.  This
    is what lets the Figure 12(b) comparison penalize the high-radix
    FB/AFB baselines the way the paper's RTL numbers do.
    """
    if radix < 1:
        raise ValueError(f"radix must be >= 1, got {radix}")
    return 0.5 + 0.5 * (radix / REFERENCE_RADIX)


class EnergyModel:
    """Turns simulation statistics into dynamic energy figures."""

    def __init__(self, config: NetworkConfig | None = None) -> None:
        self.config = config or NetworkConfig()

    def from_stats(self, stats: SimStats, radix: int | None = None) -> EnergyBreakdown:
        """Energy of a completed simulation run.

        With *radix* given, network energy is scaled by
        :func:`radix_energy_factor` (radix-aware mode, used by the
        Figure 12b reproduction); without it the flat Table I
        5 pJ/bit/hop applies.
        """
        factor = 1.0 if radix is None else radix_energy_factor(radix)
        return EnergyBreakdown(
            network_pj=factor
            * stats.network_energy_pj(self.config.network_pj_per_bit_hop),
            dram_pj=stats.dram_energy_pj(self.config.dram_pj_per_bit),
        )

    def network_energy_pj(self, payload_bytes: int, hops: int) -> float:
        """Energy of moving one packet *hops* hops."""
        bits = self.config.packet_bits(payload_bytes)
        return bits * hops * self.config.network_pj_per_bit_hop

    def dram_energy_pj(self, bytes_accessed: int) -> float:
        """Energy of reading/writing *bytes_accessed* of DRAM."""
        return 8 * bytes_accessed * self.config.dram_pj_per_bit

    def edp(self, stats: SimStats, delay_cycles: float) -> float:
        """Energy-delay product (pJ*ns) of a run with a given runtime."""
        return self.from_stats(stats).edp(delay_cycles, self.config.cycle_ns)

    def background_pj(self, active_nodes: int, cycles: float) -> float:
        """Background dynamic energy of the powered node population.

        This is the component power gating saves (Figure 9b): every
        active node burns ``node_background_pj_per_cycle`` regardless
        of traffic; gated nodes burn nothing.
        """
        return active_nodes * cycles * self.config.node_background_pj_per_cycle

    def total_with_background_pj(
        self, stats: SimStats, active_nodes: int, cycles: float
    ) -> float:
        """Traffic energy plus node background energy (pJ)."""
        return self.from_stats(stats).total_pj + self.background_pj(
            active_nodes, cycles
        )
