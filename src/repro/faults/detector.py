"""Timeout-based fault detection and emergency routing repair.

Hardware detects an unresponsive link or node through credit/heartbeat
timeouts, so knowledge of a fault always lags the fault itself.  The
:class:`FaultDetector` models exactly that lag: the injector notifies
it the instant a fault *happens*, and the detector acts a configurable
``detection_timeout`` later.  Everything that goes wrong inside the
window — packets serialized onto a dead wire, traffic piling into a
dead node's neighborhood, sources still targeting a crashed node — is
the measured cost of detection latency, the knob the ``repro faults``
sweep turns.

On detection the detector performs the *emergency reroute*: the
fault's routing state is repaired through whichever mechanism the
topology owns, and the packets left queued on failed links are swept
back to their routers to be re-forwarded (or dropped, if their
destination died with the fault):

* **String Figure** (:class:`TableRepair`) — the affected entries are
  blocked/unblocked in the neighbors' routing tables and the
  routing-generation counter is bumped, which invalidates every policy
  decision cache; this is the paper's local-bit-flip repair, no global
  recomputation.  Node crashes escalate to the
  :class:`~repro.faults.recovery.RecoveryOrchestrator`, which runs the
  reconfiguration pipeline to formally excise the node (ring patched,
  tables rebuilt) and reconstruct its data.
* **Baselines** (:class:`GraphRepair`) — mesh and Jellyfish have no
  local repair story: the interconnect graph is edited and a fresh
  minimal-routing policy is computed from scratch (the global-routing
  cost String Figure's design avoids).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.network.simulator import NetworkSimulator
from repro.network.stats import QuantileSketch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultRecord
    from repro.faults.layer import FaultLayer

__all__ = ["FaultDetector", "TableRepair", "GraphRepair"]


class TableRepair:
    """String Figure repair: block entries, bump the routing generation.

    A failed wire ``u - v`` corrupts routing state in two places, and
    both must be fixed or greedy forwarding can cycle:

    * the endpoints' own one-hop entries (``u``'s entry for ``v`` and
      vice versa) — these are *blocked*;
    * the **two-hop look-ahead of the endpoints' neighbors**: a router
      ``r`` adjacent to ``u`` may list ``v`` as a two-hop target *via
      u*.  With the wire dead, ``r`` would keep committing packets to
      an impossible hop — ``u`` cannot honor the commit, re-runs
      greedy, sends the packet back toward ``r``'s neighborhood, and
      the commit/re-commit pair livelocks.  The stale via is therefore
      *pruned* (``drop_via``; the entry invalidates when its last via
      goes).

    Because other machinery (crash excision, flap restore) rebuilds
    tables from the topology — which still physically contains every
    failed wire — the repair records its failed-link set and
    :meth:`reapply` re-imposes every block/prune after any rebuild.
    """

    def __init__(self, routing, policy) -> None:
        self.routing = routing
        self.policy = policy
        self.failed_links: set[tuple[int, int]] = set()

    def _refresh(self, routers) -> None:
        tables = self.routing.tables
        self.routing.refresh_views(sorted(r for r in routers if r in tables))
        self.policy.on_reconfigure()

    def _apply_link(self, u: int, v: int) -> set[int]:
        """Impose one failed wire on the current tables; return touched."""
        tables = self.routing.tables
        topo = self.routing.topology
        in_nbrs = getattr(topo, "in_neighbors", None)
        touched = set()
        for a, b in ((u, v), (v, u)):
            table = tables.get(a)
            if table is not None and b in table:
                table.block(b)
                touched.add(a)
            # Prune r -- a -- b look-ahead: only routers adjacent to a
            # can hold a as a via, so the scan is O(radix), not O(n).
            holders = set(topo.neighbors(a))
            if in_nbrs is not None:
                holders.update(in_nbrs(a))
            for r in holders:
                if r in (a, b):
                    continue
                rtable = tables.get(r)
                if rtable is None:
                    continue
                entry = rtable.lookup(b)
                if entry is not None and entry.hop == 2 and a in entry.vias:
                    rtable.drop_via(b, a)
                    touched.add(r)
        return touched

    def route_around_link(self, u: int, v: int) -> None:
        """Drop the failed wire from every router's window."""
        self.failed_links.add((min(u, v), max(u, v)))
        self._refresh(self._apply_link(u, v))

    def restore_link(self, u: int, v: int) -> None:
        """Re-admit a flapped wire after it proves healthy again.

        Blocking is reversible bit-by-bit, but via pruning is not, so
        the neighborhood's tables are rebuilt from the (physically
        intact) topology and the *still*-failed links re-imposed.
        """
        self.failed_links.discard((min(u, v), max(u, v)))
        topo = self.routing.topology
        region = {u, v}
        for endpoint in (u, v):
            region.update(topo.neighbors(endpoint))
            in_nbrs = getattr(topo, "in_neighbors", None)
            if in_nbrs is not None:
                region.update(in_nbrs(endpoint))
        self.routing.rebuild(sorted(region))
        self.reapply()

    def reapply(self) -> None:
        """Re-impose every live failure (call after any table rebuild)."""
        touched: set[int] = set()
        for u, v in self.failed_links:
            touched |= self._apply_link(u, v)
        self._refresh(touched)


class GraphRepair:
    """Baseline repair: edit the graph, recompute minimal routing.

    The topology's cached interconnect graph is mutated in place and a
    fresh policy (the topology's own pairing — XY/minimal-adaptive for
    mesh, minimal ECMP for Jellyfish) is rebuilt over it, then swapped
    into the simulator.  If a crash disconnects the graph, the largest
    connected component keeps routing and every stranded node is ruled
    dead (its traffic drops) — the graceful-degradation floor.
    """

    def __init__(self, sim: NetworkSimulator, topology, layer: "FaultLayer") -> None:
        self.sim = sim
        self.topology = topology
        self.layer = layer
        self.rebuilds = 0
        self.stranded: set[int] = set()

    def _rebuild(self) -> None:
        import networkx as nx

        graph = self.topology.graph()
        live = graph
        if not nx.is_connected(graph):
            biggest = max(nx.connected_components(graph), key=len)
            newly_stranded = set(graph.nodes()) - biggest - self.stranded
            for node in sorted(newly_stranded):
                self.stranded.add(node)
                self.layer.mark_dead(node)
            live = graph.subgraph(biggest).copy()
        policy = self._policy_for(live)
        policy.num_vcs = self.sim.policy.num_vcs
        self.sim.policy = policy
        self.rebuilds += 1

    def _policy_for(self, graph):
        from repro.network.policies import MinimalPolicy

        preference = getattr(self.topology, "_xy_preference", None)
        return MinimalPolicy(graph, adaptive=True, preference=preference)

    def route_around_link(self, u: int, v: int) -> None:
        graph = self.topology.graph()
        if graph.has_edge(u, v):
            graph.remove_edge(u, v)
        self._rebuild()

    def restore_link(self, u: int, v: int) -> None:
        graph = self.topology.graph()
        if graph.has_node(u) and graph.has_node(v):
            graph.add_edge(u, v)
        self._rebuild()

    def remove_node(self, node: int) -> None:
        graph = self.topology.graph()
        if graph.has_node(node):
            graph.remove_node(node)
        self._rebuild()


class FaultDetector:
    """Turns raw fault notifications into delayed repair actions.

    Parameters
    ----------
    sim, layer:
        The simulator and its fault layer.
    repair:
        :class:`TableRepair` or :class:`GraphRepair`.
    recovery:
        Optional :class:`~repro.faults.recovery.RecoveryOrchestrator`
        handling node crashes (topology excision + data
        reconstruction).  Without one, a crash gets routing repair
        only: the node is marked dead and — on baselines — removed
        from the graph.
    detection_timeout:
        Cycles between a fault occurring and the detector acting on it.
    sweep_interval:
        Poll period for re-sweeping a crashed node's inbound queues
        while the (String Figure) recovery pipeline converges.
    """

    def __init__(
        self,
        sim: NetworkSimulator,
        layer: "FaultLayer",
        repair,
        recovery=None,
        live=None,
        detection_timeout: int = 200,
        sweep_interval: int = 64,
        sweep_horizon: int = 100_000,
    ) -> None:
        if detection_timeout < 0:
            raise ValueError(
                f"detection_timeout must be >= 0, got {detection_timeout}"
            )
        self.sim = sim
        self.layer = layer
        self.repair = repair
        self.recovery = recovery
        self.detection_timeout = detection_timeout
        self.sweep_interval = sweep_interval
        self.sweep_horizon = sweep_horizon
        self.detections = 0
        self.absorbed_flaps = 0
        #: Exact fault->detection latency histogram (cycles); cheap
        #: always-on accounting surfaced by the observability probes.
        self.detection_latency = QuantileSketch()
        if live is not None and isinstance(repair, TableRepair):
            # Reconfiguration rebuilds tables from the physically
            # intact topology, resurrecting entries for failed wires;
            # re-impose the failure set (and re-sweep anything that
            # slipped onto a dead port meanwhile) after every event.
            live.on_complete.append(self._on_reconfig_complete)

    def _on_reconfig_complete(self, event) -> None:
        if not self.repair.failed_links:
            return
        self.repair.reapply()
        for u, v in sorted(self.repair.failed_links):
            self.layer.sweep_link(u, v)
            self.layer.sweep_link(v, u)

    # -- notifications from the injector -----------------------------------

    def notice(self, record: "FaultRecord") -> None:
        """A fault just happened; schedule its detection."""
        self.sim.schedule(
            self.sim.now + self.detection_timeout,
            lambda now, record=record: self._detect(now, record),
        )

    def link_restored(self, record: "FaultRecord") -> None:
        """A flapped wire came back up (called at restore time)."""
        if record.t_detected is None:
            # The flap was shorter than the detection timeout: the
            # detector never saw it ("absorbed"); _detect notes it.
            return
        u, v = record.link
        self.repair.restore_link(u, v)
        record.t_repaired = self.sim.now

    def node_resumed(self, record: "FaultRecord") -> None:
        """A hung node resumed (called at resume time)."""
        self.layer.suspect.discard(record.node)
        if record.t_detected is not None:
            record.t_repaired = self.sim.now

    # -- detection ----------------------------------------------------------

    def _detect(self, now: int, record: "FaultRecord") -> None:
        kind = record.kind
        if kind in ("link_down", "link_flap"):
            u, v = record.link
            healthy = (min(u, v), max(u, v)) not in self.layer.failed_wires
            if kind == "link_flap" and healthy:
                # Restored before anyone noticed: a transient the
                # network absorbed with loss but no repair action.
                # (The *failure registry* is the truth here, not the
                # freeze bit — the wire may still be frozen because a
                # hang of its endpoint owns the freeze, and blocking it
                # in the tables would blacklist a healthy wire with
                # nothing ever unblocking it.)
                self.absorbed_flaps += 1
                record.absorbed = True
                record.t_detected = now
                record.t_repaired = now
                return
            record.t_detected = now
            self.detections += 1
            self.detection_latency.add(now - record.t_fault)
            self.repair.route_around_link(u, v)
            r1, d1 = self.layer.sweep_link(u, v)
            r2, d2 = self.layer.sweep_link(v, u)
            record.swept = r1 + r2 + d1 + d2
            if kind == "link_down":
                record.t_repaired = now
            return
        if kind == "node_hang":
            if record.node not in self.layer.hung:
                # Already resumed: another absorbed transient.
                self.absorbed_flaps += 1
                record.absorbed = True
                record.t_detected = now
                record.t_repaired = now
                return
            record.t_detected = now
            self.detections += 1
            self.detection_latency.add(now - record.t_fault)
            # Advise sources off the unresponsive node; the backlog in
            # its neighborhood stays (backpressure is physical) and
            # drains after resume.
            self.layer.suspect.add(record.node)
            return
        # node_crash
        record.t_detected = now
        self.detections += 1
        self.detection_latency.add(now - record.t_fault)
        node = record.node
        self.layer.mark_dead(node)
        # The physical inbound set is fixed at crash time; snapshotting
        # it from the topology makes every later sweep O(radix) instead
        # of a full port-dict scan (missing ports are harmless:
        # take_queued on them returns nothing).
        topo = getattr(self.repair, "routing", None)
        topo = topo.topology if topo is not None else self.repair.topology
        inbound = {w for w in topo.neighbors(node)}
        in_nbrs = getattr(topo, "in_neighbors", None)
        if in_nbrs is not None:
            inbound.update(in_nbrs(node))
        pairs = [(w, node) for w in sorted(inbound) if w != node]
        self._sweep_around(pairs, record)
        if self.recovery is not None:
            self.recovery.handle_crash(record)
        elif isinstance(self.repair, GraphRepair):
            self.repair.remove_node(node)
            record.t_repaired = now
        else:
            record.t_repaired = now
        self._schedule_sweeps(node, pairs, record, now)

    # -- crash sweeping ------------------------------------------------------

    def _sweep_around(self, pairs, record: "FaultRecord") -> int:
        """Re-route everything queued toward the crashed node."""
        swept = 0
        for u, v in pairs:
            r, d = self.layer.sweep_link(u, v)
            swept += r + d
        record.swept += swept
        return swept

    def _schedule_sweeps(
        self, node: int, pairs, record: "FaultRecord", since: int
    ) -> None:
        """Keep sweeping until routing stops sending transit at *node*.

        Between detection and the recovery pipeline's block/rebuild
        step, greedy routing may still pick the dead node as a transit
        target; swept packets re-enter, re-forward, and possibly queue
        again — bounded by the pipeline latency.  Sweeping stops once
        the node is quiescent (or the repair finished and nothing is
        queued).
        """

        def sweep(now: int) -> None:
            swept = self._sweep_around(pairs, record)
            done = record.t_repaired is not None or record.t_recovered is not None
            if swept == 0 and (done or self.sim.node_quiescent(node)):
                return
            if now - since > self.sweep_horizon:
                raise RuntimeError(
                    f"crash sweeps around node {node} did not converge within "
                    f"{self.sweep_horizon} cycles — repair never landed?"
                )
            self.sim.schedule(now + self.sweep_interval, sweep)

        self.sim.schedule(self.sim.now + self.sweep_interval, sweep)
