"""Fault injection and resilience: unplanned failures end-to-end.

Everything before this package asked the network to *scale* — planned
departures where the reconfiguration manager drains, migrates, and
only then cuts links.  This package asks it to *survive*: links flap
and die, nodes crash and hang mid-packet, with no drain and no
warning, and the measured questions are the paper's §V resilience
claims — does routing degrade gracefully, how much does detection
latency cost, is `sent == delivered + lost` provable, and does a crash
lose data?

* :class:`FaultLayer` — the simulator-attached loss/parking/retransmit
  semantics (the physics of failure).
* :class:`FaultInjector` / :class:`FaultPlan` / :class:`FaultEvent` /
  :class:`FaultRecord` — scheduling failures into the event loop and
  recording their timelines.
* :class:`FaultDetector` + :class:`TableRepair` / :class:`GraphRepair`
  — timeout-delayed detection and the emergency reroute (local table
  bit flips on String Figure, global recompute on baselines).
* :class:`RecoveryOrchestrator` — crash excision through the live
  reconfiguration pipeline plus page reconstruction through the
  migration engine (mirrored) or lost-page accounting (unmirrored).

The scenario gluing all of it under foreground traffic is
:func:`repro.workloads.faults.run_faults`.
"""

from repro.faults.detector import FaultDetector, GraphRepair, TableRepair
from repro.faults.injector import (
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultRecord,
)
from repro.faults.layer import FaultLayer
from repro.faults.recovery import RecoveryOrchestrator

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultRecord",
    "FaultInjector",
    "FaultLayer",
    "FaultDetector",
    "TableRepair",
    "GraphRepair",
    "RecoveryOrchestrator",
]
