"""Crash recovery: excise the dead node, reconstruct its data.

A node crash is the one fault that cannot be routed around and
forgotten: the crashed router's links must formally leave the topology
(on String Figure, the space-0 ring gets its shortcut patch and the
neighbors' tables their bit flips), and the memory pages that lived in
the crashed node's DRAM must be accounted for — reconstructed from a
surviving replica when one exists, ruled *lost* when none does.

The :class:`RecoveryOrchestrator` deliberately owns no new machinery.
Topology excision reuses the online reconfiguration pipeline
(:class:`~repro.network.elastic.LiveReconfigurator` ``unmount``: the
drain converges because the detector already drops traffic destined to
the dead node; the block window parks stragglers; the switch patches
the ring), and data reconstruction reuses the migration engine
(:meth:`~repro.memory.migration.MigrationEngine.transfer` streams each
recovered page from its replica to its rebalanced home as rate-limited
``MIG_READ``/``MIG_DATA`` traffic competing with the foreground load).

Mirroring model
---------------

``mirrored=True`` assumes every page has one replica, held by the next
*surviving* node after the page's owner in the address interleave
order (the canonical primary-backup placement).  On a crash the
replica instantly becomes the authoritative copy (a directory bit
flip: :meth:`PageDirectory.teleport` — the data is already there), and
the pages are then physically re-homed to the post-crash placement so
capacity stays balanced.  A single crash therefore loses **zero**
pages.  ``mirrored=False`` models replica-less deployments: every page
resident on the crashed node is destroyed and accounted in
``PageDirectory.lost`` — the number the paper's availability argument
is about.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultRecord

__all__ = ["RecoveryOrchestrator"]


class RecoveryOrchestrator:
    """Drives post-crash excision and page reconstruction.

    Parameters
    ----------
    sim, layer:
        Simulator and fault layer.
    live:
        :class:`~repro.network.elastic.LiveReconfigurator` for String
        Figure topologies (None on baselines — their graph repair
        already excised the node before this runs).
    graph_repair:
        :class:`~repro.faults.detector.GraphRepair` for baselines.
    engine, directory:
        Optional :class:`~repro.memory.migration.MigrationEngine` and
        :class:`~repro.memory.migration.PageDirectory` — the page
        layer.  Without them recovery is routing-only.
    mirrored:
        Whether every page has a surviving replica (see module doc).
    busy_poll_cycles:
        Retry period while a previous recovery transfer still runs
        (recoveries are serialized; a crash during another crash's
        reconstruction waits its turn).
    busy_wait_horizon:
        Hard bound on that wait: a transfer that never completes (e.g.
        its chunks were lost beyond the retry budget) must fail the
        run promptly with a diagnostic, not spin the poll until the
        simulator's global event cap.
    """

    def __init__(
        self,
        sim,
        layer,
        live=None,
        graph_repair=None,
        engine=None,
        directory=None,
        mirrored: bool = True,
        busy_poll_cycles: int = 128,
        busy_wait_horizon: int = 200_000,
    ) -> None:
        self.sim = sim
        self.layer = layer
        self.live = live
        self.graph_repair = graph_repair
        self.engine = engine
        self.directory = directory
        self.mirrored = mirrored
        self.busy_poll_cycles = busy_poll_cycles
        self.busy_wait_horizon = busy_wait_horizon
        self.pages_lost = 0
        self.pages_recovered = 0
        self.pages_rehomed = 0
        self.recoveries = 0
        self._pending_unmount: dict[int, tuple] = {}
        if live is not None:
            live.on_complete.append(self._on_live_event)

    # -- entry point (called by the detector) ------------------------------

    def handle_crash(self, record: "FaultRecord", since: int | None = None) -> None:
        """Excise ``record.node`` and reconstruct its pages."""
        if self.engine is not None and self.engine.busy:
            now = self.sim.now
            if since is None:
                since = now
            if now - since > self.busy_wait_horizon:
                raise RuntimeError(
                    f"recovery of node {record.node} waited "
                    f"{now - since} cycles for a previous migration "
                    "batch that never completed — transfer wedged "
                    "(chunks lost beyond the retry budget?)"
                )
            self.sim.schedule(
                now + self.busy_poll_cycles,
                lambda t, record=record, since=since: self.handle_crash(
                    record, since
                ),
            )
            return
        node = record.node
        self.recoveries += 1
        moves = self._plan_pages(node, record)
        if self.live is not None:
            self._pending_unmount[node] = (record, moves)
            self.live.unmount([node])
        else:
            if self.graph_repair is not None:
                self.graph_repair.remove_node(node)
            record.t_repaired = self.sim.now
            self._start_transfer(record, moves)

    # -- page accounting ----------------------------------------------------

    def _plan_pages(self, node: int, record: "FaultRecord") -> list[tuple[int, int, int]]:
        """Rule on every page that lived on *node*; return the moves.

        Mirrored: ownership flips to the surviving replica (a directory
        bit — the data is already there) and the page is queued to move
        to its post-crash home.  Unmirrored: the page is lost.
        """
        engine, directory = self.engine, self.directory
        if engine is None or directory is None:
            return []
        affected = directory.resident_on(node)
        survivors = [m for m in engine.mapper.nodes if m != node]
        if not survivors:
            raise RuntimeError(f"node {node} crashed with no survivors")
        recovered: list[int] = []
        for page in affected:
            if self.mirrored:
                mirror = self._mirror_of(page, node, survivors)
                directory.teleport(page, mirror)
                recovered.append(page)
                record.pages_recovered += 1
                self.pages_recovered += 1
            else:
                directory.drop_page(page)
                record.pages_lost += 1
                self.pages_lost += 1
        new_mapper = engine.mapper.rebalance(survivors)
        engine.mapper = new_mapper
        moves: list[tuple[int, int, int]] = []
        for page in recovered:
            src = directory.owner_of(page)
            dst = new_mapper.node_of(new_mapper.page_addr(page))
            if src != dst:
                moves.append((page, src, dst))
        return moves

    def _mirror_of(self, page: int, owner: int, survivors: list[int]) -> int:
        """The page's surviving replica holder (next-in-interleave)."""
        home = self.engine.mapper.home
        alive = set(survivors)
        pos = home.index(owner) if owner in home else page % len(home)
        for step in range(1, len(home) + 1):
            candidate = home[(pos + step) % len(home)]
            if candidate in alive and candidate != owner:
                return candidate
        raise RuntimeError(f"no surviving mirror for page {page}")

    # -- transfer chaining ---------------------------------------------------

    def _on_live_event(self, event) -> None:
        if event.kind != "unmount":
            return
        for node in event.nodes:
            pending = self._pending_unmount.pop(node, None)
            if pending is None:
                continue
            record, moves = pending
            record.t_repaired = self.sim.now
            self._start_transfer(record, moves)

    def _start_transfer(self, record: "FaultRecord", moves) -> None:
        if self.engine is None or not moves:
            record.t_recovered = self.sim.now
            return

        def done(now: int, record=record) -> None:
            record.t_recovered = now
            self.pages_rehomed += record.migration.pages_moved

        record.migration = self.engine.transfer(
            moves, kind="recover", nodes=(record.node,), on_done=done
        )
