"""Scheduling unplanned failures into the event loop.

A :class:`FaultPlan` is a time-ordered list of :class:`FaultEvent`
declarations — *what* fails and *when*, with targets either pinned
explicitly or left open for deterministic runtime selection.  The
:class:`FaultInjector` executes the plan: at each event time it
resolves the victim against the then-current network (seeded RNG, so
runs are bit-reproducible at any worker count), applies the physical
effect through the :class:`~repro.faults.layer.FaultLayer` — no drain,
no warning, the defining difference from the planned churn of
PR-2/PR-3 — notifies the :class:`~repro.faults.detector.FaultDetector`
(which will only act after its detection latency), and schedules the
restore side of transient faults (flap/hang).

Victim selection rules:

* **node_crash** — on String Figure, a cleanly-gateable victim (the
  reconfiguration manager's candidate set), so the space-0 ring stays
  patchable and the delivery guarantee survives the excision; on
  baselines, any alive node.
* **node_hang** — any alive, currently-healthy node.
* **link_down / link_flap** — a random incident wire; on String
  Figure, space-0 ring wires are excluded (they are the
  guaranteed-delivery substrate the shortcut patching protects — the
  paper's resilience claim is about the *other* links' path
  diversity).

Every fired fault leaves a :class:`FaultRecord` carrying its full
timeline (fault → detected → repaired → recovered) and loss
accounting; scenario code turns these into availability metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.utils.rng import derive_rng

__all__ = ["FaultEvent", "FaultPlan", "FaultRecord", "FaultInjector"]

FAULT_KINDS = ("link_down", "link_flap", "node_crash", "node_hang")


@dataclass(frozen=True)
class FaultEvent:
    """One declared failure.

    ``node``/``link`` may be None: the injector then picks a victim at
    fire time (deterministically, from the run's seed).  ``duration``
    applies to transient kinds (cycles until a flapped link restores /
    a hung node resumes).
    """

    time: int
    kind: str
    node: int | None = None
    link: tuple[int, int] | None = None
    duration: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.kind in ("link_flap", "node_hang") and self.duration <= 0:
            raise ValueError(f"{self.kind} needs a positive duration")


@dataclass
class FaultPlan:
    """A time-ordered failure schedule."""

    events: list[FaultEvent] = field(default_factory=list)

    @classmethod
    def single_crash(cls, at: int, node: int | None = None) -> "FaultPlan":
        """One unannounced node crash (the acceptance scenario)."""
        return cls([FaultEvent(time=at, kind="node_crash", node=node)])

    @classmethod
    def random(
        cls,
        rate: float,
        start: int,
        stop: int,
        seed: int | None = 0,
        kinds: tuple[str, ...] = FAULT_KINDS,
        flap_cycles: int = 300,
        hang_cycles: int = 500,
        max_crashes: int = 1,
    ) -> "FaultPlan":
        """Faults arriving at *rate* per cycle over ``[start, stop)``.

        Inter-arrival gaps are geometric (the Bernoulli process in
        event form, like traffic injection); kinds cycle round-robin
        through *kinds* with node crashes capped at *max_crashes* —
        each crash permanently shrinks the network, so unbounded crash
        counts measure a disappearing system, not a resilient one.
        """
        if rate <= 0:
            return cls([])
        if not kinds:
            raise ValueError("need at least one fault kind")
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
        import math

        rng = derive_rng(seed, "fault-plan")
        events: list[FaultEvent] = []
        t = start
        crashes = 0
        index = 0
        while True:
            u = rng.random()
            if rate >= 1.0:
                gap = 1
            else:
                gap = max(1, math.ceil(math.log(1.0 - u) / math.log(1.0 - rate)))
            t += gap
            if t >= stop:
                break
            for _ in range(len(kinds)):
                kind = kinds[index % len(kinds)]
                index += 1
                if kind == "node_crash" and crashes >= max_crashes:
                    continue
                break
            else:
                break  # only crashes left and the cap is reached
            if kind == "node_crash":
                crashes += 1
            duration = (
                flap_cycles if kind == "link_flap"
                else hang_cycles if kind == "node_hang"
                else 0
            )
            events.append(FaultEvent(time=t, kind=kind, duration=duration))
        return cls(events)


@dataclass
class FaultRecord:
    """Timeline and damage accounting of one fired fault."""

    kind: str
    t_fault: int
    node: int | None = None
    link: tuple[int, int] | None = None
    duration: int = 0
    t_detected: int | None = None
    t_restored: int | None = None  # flap/hang physical restore
    t_repaired: int | None = None  # routing state fixed
    t_recovered: int | None = None  # data reconstruction done (crash)
    lost_in_router: int = 0
    lost_mid_wire: int = 0
    swept: int = 0
    pages_lost: int = 0
    pages_recovered: int = 0
    absorbed: bool = False
    migration: Any = None

    def cleared_at(self, default: int) -> int:
        """When this fault stopped affecting the network."""
        candidates = [
            t for t in (
                self.t_recovered, self.t_repaired, self.t_restored,
                self.t_detected,
            )
            if t is not None
        ]
        return max(candidates) if candidates else default

    def unreachable_node_cycles(self, run_end: int) -> int:
        """Node-cycles of service unavailability this fault caused."""
        if self.kind == "node_crash":
            end = self.t_recovered if self.t_recovered is not None else run_end
            return max(0, end - self.t_fault)
        if self.kind == "node_hang":
            end = self.t_restored if self.t_restored is not None else run_end
            return max(0, end - self.t_fault)
        return 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "t_fault": self.t_fault,
            "node": self.node,
            "link": list(self.link) if self.link is not None else None,
            "duration": self.duration,
            "t_detected": self.t_detected,
            "t_restored": self.t_restored,
            "t_repaired": self.t_repaired,
            "t_recovered": self.t_recovered,
            "lost_in_router": self.lost_in_router,
            "lost_mid_wire": self.lost_mid_wire,
            "swept": self.swept,
            "pages_lost": self.pages_lost,
            "pages_recovered": self.pages_recovered,
            "absorbed": self.absorbed,
            "migration": (
                self.migration.to_dict() if self.migration is not None else None
            ),
        }


class FaultInjector:
    """Fires a :class:`FaultPlan` against a live simulation."""

    def __init__(
        self,
        sim,
        layer,
        detector,
        topology,
        manager=None,
        seed: int | None = 0,
    ) -> None:
        self.sim = sim
        self.layer = layer
        self.detector = detector
        self.topology = topology
        self.manager = manager  # SF ReconfigurationManager (victim picking)
        self.rng = derive_rng(seed, "fault-victims")
        self.records: list[FaultRecord] = []
        self.skipped_events = 0

    def apply(self, plan: FaultPlan) -> None:
        for event in plan.events:
            self.sim.schedule(
                event.time, lambda now, e=event: self._fire(now, e)
            )

    # -- victim selection ---------------------------------------------------

    def _alive_nodes(self) -> list[int]:
        layer = self.layer
        return [
            n for n in self.topology.active_nodes
            if n not in layer.crashed and n not in layer.hung
        ]

    def _pick_crash_victim(self) -> int | None:
        if self.manager is not None:
            candidates = [
                n for n in self.manager.gate_candidates(
                    len(self.topology.active_nodes), min_spacing=2
                )
                if n not in self.layer.crashed and n not in self.layer.hung
            ]
        else:
            candidates = self._alive_nodes()
        if not candidates:
            return None
        return candidates[self.rng.randrange(len(candidates))]

    def _pick_hang_victim(self) -> int | None:
        candidates = self._alive_nodes()
        if not candidates:
            return None
        return candidates[self.rng.randrange(len(candidates))]

    def _link_is_eligible(self, u: int, v: int) -> bool:
        if self.sim.link_frozen(u, v) or self.sim.link_frozen(v, u):
            return False
        ring_spaces = getattr(self.topology, "ring_spaces", None)
        if ring_spaces is not None and 0 in ring_spaces(u, v):
            return False  # keep the guaranteed-delivery ring intact
        return True

    def _pick_link_victim(self) -> tuple[int, int] | None:
        alive = self._alive_nodes()
        if not alive:
            return None
        for _ in range(64):
            u = alive[self.rng.randrange(len(alive))]
            neighbors = [
                w for w in self.topology.neighbors(u)
                if w not in self.layer.crashed and w not in self.layer.hung
            ]
            if not neighbors:
                continue
            v = neighbors[self.rng.randrange(len(neighbors))]
            if self._link_is_eligible(u, v):
                return (u, v)
        return None

    # -- firing --------------------------------------------------------------

    def _fire(self, now: int, event: FaultEvent) -> None:
        kind = event.kind
        if kind in ("node_crash", "node_hang"):
            node = event.node
            if node is None:
                node = (
                    self._pick_crash_victim()
                    if kind == "node_crash"
                    else self._pick_hang_victim()
                )
            elif node in self.layer.crashed or node in self.layer.hung:
                node = None
            if node is None:
                self.skipped_events += 1
                return
            record = FaultRecord(
                kind=kind, t_fault=now, node=node, duration=event.duration
            )
            neighbors = list(self.topology.neighbors(node))
            in_nbrs = getattr(self.topology, "in_neighbors", None)
            if in_nbrs is not None:
                neighbors = sorted(set(neighbors) | set(in_nbrs(node)))
            if kind == "node_crash":
                in_router, mid_wire = self.layer.crash_node(node, neighbors)
                record.lost_in_router = in_router
                record.lost_mid_wire = mid_wire
            else:
                self.layer.hang_node(node, neighbors)
                self.sim.schedule(
                    now + event.duration,
                    lambda t, r=record, nbrs=neighbors: self._resume(t, r, nbrs),
                )
            self.records.append(record)
            self.detector.notice(record)
            return
        # link faults
        link = event.link
        if link is not None:
            u, v = link
            if not self._link_is_eligible(u, v):
                link = None
        else:
            link = self._pick_link_victim()
        if link is None:
            self.skipped_events += 1
            return
        u, v = link
        record = FaultRecord(
            kind=kind, t_fault=now, link=(u, v), duration=event.duration
        )
        record.lost_mid_wire = self.layer.fail_link_pair(u, v)
        if kind == "link_flap":
            self.sim.schedule(
                now + event.duration,
                lambda t, r=record: self._restore_link(t, r),
            )
        self.records.append(record)
        self.detector.notice(record)

    def _restore_link(self, now: int, record: FaultRecord) -> None:
        u, v = record.link
        if u in self.layer.crashed or v in self.layer.crashed:
            # An endpoint died while the wire was down: the flap is
            # subsumed by the crash — nothing comes back up, and the
            # routing repair must not resurrect the dead router.
            return
        self.layer.restore_link_pair(u, v)
        record.t_restored = now
        self.detector.link_restored(record)

    def _resume(self, now: int, record: FaultRecord, neighbors) -> None:
        self.layer.resume_node(record.node, neighbors)
        record.t_restored = now
        self.detector.node_resumed(record)
