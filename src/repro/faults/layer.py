"""Simulator-level fault semantics: loss, parking, retransmission.

The :class:`FaultLayer` is the one object the simulator consults about
failures (installed via
:meth:`~repro.network.simulator.NetworkSimulator.install_fault_layer`).
It owns the *physical* consequences of unplanned faults — which packets
die, which wait, who may retransmit — while the policy questions (when
is a fault noticed, how is routing repaired, how is data reconstructed)
live in :mod:`repro.faults.detector` and :mod:`repro.faults.recovery`.

Loss model
----------

A packet can be lost three ways, all counted in ``stats.dropped`` so
``sent == delivered + dropped`` is a checkable conservation law at the
end of every drained run:

* **mid-wire** — it was serializing across a link the instant the link
  failed (the pids doomed by ``fail_link`` drop at their would-be
  arrival);
* **in-crash** — it was buffered inside the router that died (swept out
  of the crashed node's output queues at crash time);
* **unreachable** — it is destined to a node the detector has ruled
  dead (dropped at its next arrival anywhere; before detection such
  packets pile into the dead node's neighbors' buffers, which is the
  realistic pre-detection damage).

Retransmission
--------------

Every loss is offered to the per-source retry queue: if the original
source is still alive and the destination has not been ruled dead, a
clone is re-sent ``retransmit_timeout`` cycles later, up to
``max_retries`` attempts per original packet.  Clones are unmeasured
(the clean-latency statistics stay honest); end-to-end completion
latency including retries is recoverable through :meth:`take_meta`,
which maps a delivered clone back to its original injection time.
Every attempt is a fresh ``sent`` and ends ``delivered`` or
``dropped``, so the conservation law needs no special cases.

Hung nodes
----------

Arrivals at a hung router are *parked holding their inbound-link
credit* — the packet sits in the input buffer of a router whose
pipeline has stalled, so upstream credits stay consumed and the
backpressure tree grows exactly as it would in hardware.  (Contrast
with live-reconfiguration parking, which releases credits because its
windows are short and bounded.)  On resume the parked packets re-enter
in arrival order.
"""

from __future__ import annotations

from repro.network.packet import Packet
from repro.network.simulator import NetworkSimulator

__all__ = ["FaultLayer"]


class FaultLayer:
    """Physical fault state attached to one :class:`NetworkSimulator`.

    Parameters
    ----------
    sim:
        The simulator to attach to (the layer installs itself).
    retransmit_timeout:
        Cycles a source waits after a loss before re-sending.
    max_retries:
        Retransmission attempts per original packet before the loss is
        abandoned for good.
    """

    def __init__(
        self,
        sim: NetworkSimulator,
        retransmit_timeout: int = 64,
        max_retries: int = 8,
        retransmit_class: int | None = None,
    ) -> None:
        if retransmit_timeout < 1:
            raise ValueError(
                f"retransmit_timeout must be >= 1, got {retransmit_timeout}"
            )
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.sim = sim
        self.retransmit_timeout = retransmit_timeout
        self.max_retries = max_retries
        #: Traffic class for retransmitted clones; ``None`` inherits the
        #: original packet's class, an explicit id (e.g. the background
        #: class) rate-shapes retry storms below foreground traffic.
        self.retransmit_class = retransmit_class
        #: Routers that physically died (known instantly to *themselves*:
        #: a crashed node's own injector stops with it).
        self.crashed: set[int] = set()
        #: Routers whose pipeline is stalled (arrivals park).
        self.hung: set[int] = set()
        #: Nodes the detector has ruled dead — traffic toward them drops.
        self.dead: set[int] = set()
        #: Nodes the detector currently advises sources to avoid
        #: (hung-but-expected-back; dead nodes are listed in ``dead``).
        self.suspect: set[int] = set()
        #: Hard-failed wires, canonical (min, max) keys.  Freezing is a
        #: shared mechanism (hangs freeze too), so restores consult
        #: this registry: resuming a hung node must not thaw a wire a
        #: link fault killed, and a flap restore must not thaw a wire
        #: whose endpoint is hung or dead.
        self.failed_wires: set[tuple[int, int]] = set()
        #: Parked arrivals per hung node: (park_time, packet, from_link,
        #: first_hop) — from_link credits stay held (see module doc).
        self._parked: dict[int, list[tuple]] = {}
        #: Retry bookkeeping: clone pid -> (first_inject, attempts).
        self._retry_meta: dict[int, tuple[int, int]] = {}
        self.drops: dict[str, int] = {
            "link": 0, "crash": 0, "unreachable": 0, "flush": 0,
        }
        self.retransmits = 0
        self.abandoned_unreachable = 0
        self.abandoned_retries = 0
        self.parked_packets = 0
        self.park_cycle_sum = 0
        self.swept_packets = 0
        sim.install_fault_layer(self)

    # -- availability (what traffic sources may target) --------------------

    def usable_source(self, node: int) -> bool:
        """Whether *node*'s own processor can inject right now.

        A node knows its own crash/hang instantly — its cores died or
        stalled with its router — so this is physical state, not
        detected state.  A node *ruled* dead (e.g. stranded by a
        partition) also stops: it has detected that nothing it sends
        can leave.
        """
        return (
            node not in self.crashed
            and node not in self.hung
            and node not in self.dead
        )

    def usable_dest(self, node: int) -> bool:
        """Whether sources should currently address traffic to *node*.

        Remote failures are only known once the detector announces
        them, so before detection sources keep sending into the failure
        (and pay for it) — the fidelity point of the whole subsystem.
        """
        return node not in self.dead and node not in self.suspect

    # -- the simulator's arrival intercept ---------------------------------

    def intercept(self, node: int, packet: Packet, from_link, first_hop: bool) -> bool:
        """Rule on one arrival; True means the layer consumed it."""
        if from_link is not None:
            doomed = from_link.drop_pids
            if doomed and packet.pid in doomed:
                doomed.discard(packet.pid)
                self._drop(packet, from_link, "link")
                return True
        if packet.dst in self.dead or node in self.dead:
            # Destined to a dead node, or currently *at* one — the
            # latter happens when a partition strands a live router
            # with transit traffic inside the minority island.
            self._drop(packet, from_link, "unreachable")
            return True
        if node in self.hung:
            # Input-buffered park: the credit travels with the packet.
            self._parked.setdefault(node, []).append(
                (self.sim.now, packet, from_link, first_hop)
            )
            self.parked_packets += 1
            return True
        return False

    # -- loss + retransmission ---------------------------------------------

    def _drop(self, packet: Packet, from_link, reason: str) -> None:
        self.sim.drop_packet(packet, from_link)
        self.drops[reason] += 1
        meta = self._retry_meta.pop(packet.pid, None)
        first, attempts = meta if meta is not None else (packet.inject_time, 0)
        if packet.dst in self.dead:
            self.abandoned_unreachable += 1
            return
        if attempts >= self.max_retries:
            self.abandoned_retries += 1
            return
        self._schedule_retransmit(packet, first, attempts)

    def _schedule_retransmit(
        self, packet: Packet, first: int, attempts: int
    ) -> None:
        src, dst = packet.src, packet.dst

        def resend(now: int, packet=packet, first=first, attempts=attempts) -> None:
            if dst in self.dead:
                self.abandoned_unreachable += 1
                return
            if src in self.crashed or src in self.dead:
                # The retry queue died (or was stranded) with its node.
                self.abandoned_unreachable += 1
                return
            clone = Packet(
                src=src,
                dst=dst,
                size_flits=packet.size_flits,
                payload_bytes=packet.payload_bytes,
                kind=packet.kind,
                tclass=(
                    packet.tclass
                    if self.retransmit_class is None
                    else self.retransmit_class
                ),
                measured=False,
                context=packet.context,
            )
            self._retry_meta[clone.pid] = (first, attempts + 1)
            self.retransmits += 1
            self.sim.send(clone, now)

        self.sim.schedule(self.sim.now + self.retransmit_timeout, resend)

    def take_meta(self, pid: int) -> tuple[int, int] | None:
        """Pop the (first_inject, attempts) record of a delivered clone."""
        return self._retry_meta.pop(pid, None)

    # -- physical fault effects --------------------------------------------

    def fail_link_pair(self, u: int, v: int) -> int:
        """Hard-fail the (bidirectional) wire between *u* and *v*.

        Both directed links freeze and their mid-wire packets are
        doomed; queued packets stay buffered at their upstream routers
        until the detector sweeps them.  Returns the mid-wire count.
        """
        self.failed_wires.add((min(u, v), max(u, v)))
        return self.sim.fail_links(((u, v), (v, u)))

    def _restore_directed(self, u: int, v: int) -> None:
        """Thaw link ``u -> v`` unless some other fault still owns it:
        the wire itself is hard-failed, the transmitting router is
        hung, or either endpoint is physically dead."""
        if (min(u, v), max(u, v)) in self.failed_wires:
            return
        if u in self.hung or u in self.crashed or v in self.crashed:
            return
        self.sim.restore_link(u, v)

    def restore_link_pair(self, u: int, v: int) -> None:
        """Bring a flapped wire back up (both directions)."""
        self.failed_wires.discard((min(u, v), max(u, v)))
        self._restore_directed(u, v)
        self._restore_directed(v, u)

    def crash_node(self, node: int, neighbors) -> tuple[int, int]:
        """Kill *node* without warning.

        Every incident link fails (mid-wire packets doomed) and the
        packets buffered inside the crashed router — its output queues
        — are lost on the spot.  Returns ``(in_router, mid_wire)`` loss
        counts.  Routing repair and data recovery are the detector's
        and orchestrator's business, *after* the detection latency.
        """
        self.crashed.add(node)
        sim = self.sim
        neighbors = list(neighbors)
        for w in neighbors:
            self.failed_wires.add((min(node, w), max(node, w)))
        mid_wire = sim.fail_links(
            [(node, w) for w in neighbors] + [(w, node) for w in neighbors]
        )
        in_router = 0
        for w in neighbors:
            for packet, from_link in sim.take_queued(node, w):
                self._drop(packet, from_link, "crash")
                in_router += 1
        return in_router, mid_wire

    def hang_node(self, node: int, neighbors) -> None:
        """Stall *node*'s router pipeline (no loss, growing backlog)."""
        self.hung.add(node)
        for w in neighbors:
            self.sim.freeze_link(node, w)

    def resume_node(self, node: int, neighbors) -> int:
        """Un-hang *node*: thaw its links, re-enter parked arrivals.

        Only the links the hang froze come back — a wire that a link
        fault killed (or whose far end died) while the node was hung
        stays down.
        """
        self.hung.discard(node)
        self.suspect.discard(node)
        for w in neighbors:
            self._restore_directed(node, w)
        parked = self._parked.pop(node, [])
        now = self.sim.now
        for t_park, packet, from_link, first_hop in parked:
            self.park_cycle_sum += now - t_park
            packet.route_state = None
            self.sim.rearrive(node, packet, from_link, first_hop)
        return len(parked)

    def mark_dead(self, node: int) -> None:
        """Detector verdict: *node* is gone — stop traffic toward it."""
        self.dead.add(node)
        self.suspect.discard(node)

    def sweep_link(self, u: int, v: int) -> tuple[int, int]:
        """Pull queued packets off directed link ``u -> v`` and re-route.

        Transit packets re-enter at *u* with fresh routing state (the
        caller has already repaired the tables/policy); packets destined
        to a dead node are dropped here.  Returns
        ``(rerouted, dropped)``.
        """
        rerouted = dropped = 0
        for packet, from_link in self.sim.take_queued(u, v):
            if packet.dst in self.dead:
                self._drop(packet, from_link, "unreachable")
                dropped += 1
            else:
                packet.route_state = None
                self.sim.rearrive(u, packet, from_link)
                rerouted += 1
        self.swept_packets += rerouted + dropped
        return rerouted, dropped

    def flush_stuck(self) -> int:
        """End-of-run safety valve: drop anything still wedged on dead
        infrastructure (frozen-port queues, unresumed parks).

        A correctly repaired run flushes nothing; the count is surfaced
        in payloads so a nonzero value is visible, and conservation
        (``sent == delivered + dropped``) holds either way.
        """
        flushed = 0
        sim = self.sim
        for port in list(sim._ports.values()):
            if port.saved_channels is None:
                continue
            for packet, from_link in sim.take_queued(port.u, port.v):
                self.sim.drop_packet(packet, from_link)
                self.drops["flush"] += 1
                flushed += 1
        for node, parked in list(self._parked.items()):
            for _t, packet, from_link, _fh in parked:
                self.sim.drop_packet(packet, from_link)
                self.drops["flush"] += 1
                flushed += 1
            del self._parked[node]
        return flushed

    # -- accounting ---------------------------------------------------------

    @property
    def total_dropped(self) -> int:
        return sum(self.drops.values())

    @property
    def abandoned(self) -> int:
        """Losses the retry queue gave up on (truly lost traffic)."""
        return self.abandoned_unreachable + self.abandoned_retries

    def counters(self) -> dict[str, int]:
        """Flat JSON-safe counter snapshot for payloads."""
        return {
            "dropped_link": self.drops["link"],
            "dropped_crash": self.drops["crash"],
            "dropped_unreachable": self.drops["unreachable"],
            "dropped_flush": self.drops["flush"],
            "retransmits": self.retransmits,
            "abandoned_unreachable": self.abandoned_unreachable,
            "abandoned_retries": self.abandoned_retries,
            "fault_parked": self.parked_packets,
            "fault_park_cycle_sum": self.park_cycle_sum,
            "swept_packets": self.swept_packets,
        }
