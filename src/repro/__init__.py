"""String Figure: a scalable and elastic memory network architecture.

A from-scratch Python reproduction of the HPCA 2019 paper by Ogleari,
Yu, Qian, Miller, and Zhao.  The package implements the paper's three
contributions — the balanced random multi-space topology, the hybrid
compute+table greediest routing protocol, and the elastic network
reconfiguration mechanisms — together with every substrate the paper's
evaluation depends on: a discrete-event memory-network simulator, the
baseline topologies (mesh, flattened butterfly, S2, Jellyfish), the
synthetic traffic patterns, trace-driven workload models with a cache
hierarchy, DRAM timing, and a dynamic-energy/power-gating model.

Quickstart::

    from repro import StringFigureTopology, GreediestRouting
    topo = StringFigureTopology(num_nodes=128, num_ports=4, seed=1)
    routing = GreediestRouting(topo)
    result = routing.route(src=0, dst=77)
    print(result.path)
"""

from repro.core.coordinates import (
    CoordinateSystem,
    circular_distance,
    clockwise_distance,
    min_circular_distance,
)
from repro.core.reconfig import ReconfigurationManager
from repro.core.routing import AdaptiveGreediestRouting, GreediestRouting
from repro.core.routing_table import RoutingTable, TableEntry
from repro.core.topology import LinkDirection, S2Topology, StringFigureTopology
from repro.network.config import NetworkConfig
from repro.network.elastic import LiveReconfigurator
from repro.network.simulator import NetworkSimulator
from repro.topologies.registry import make_policy, make_topology

__all__ = [
    "AdaptiveGreediestRouting",
    "CoordinateSystem",
    "GreediestRouting",
    "LinkDirection",
    "LiveReconfigurator",
    "NetworkConfig",
    "NetworkSimulator",
    "ReconfigurationManager",
    "RoutingTable",
    "S2Topology",
    "StringFigureTopology",
    "TableEntry",
    "circular_distance",
    "clockwise_distance",
    "make_policy",
    "make_topology",
    "min_circular_distance",
]

__version__ = "1.0.0"
