"""``FabricProbes``: the object the stack accepts via ``install_probes``.

One probes instance composes the three observability pieces — a
:class:`~repro.obs.registry.MetricsRegistry`, an optional
:class:`~repro.obs.timeseries.TimeSeriesRecorder`, and an optional
:class:`~repro.obs.tracer.PacketTracer` — and exposes the narrow
callback surface the simulator hot paths invoke behind their single
``is None`` tests:

* ``on_event(code, now)`` — every processed heap event (the hottest
  hook: an int increment, a ring append, and the timeseries boundary
  compare);
* ``on_inject`` / ``on_arrive`` / ``on_enqueue`` / ``on_send`` /
  ``on_deliver`` / ``on_drop`` / ``on_credit_stall`` — packet
  lifecycle points;
* ``on_queue_join`` / ``on_dequeue`` / ``on_qos_dequeue`` — the
  queue-residency endpoints (and the QoS arbiter's pick), consumed by
  the optional :class:`~repro.obs.anatomy.LatencyAnatomy` delay
  decomposition behind one more ``is None`` test.

Everything else is **pull**: counters the layers already keep (fault
drops, in-flight pages, tenant sketches) are registered as probes or
collectors resolved at sample/scrape time, so instrumentation adds no
writes to those paths at all.  Probes never call ``schedule`` and
never allocate sequence numbers, which is what keeps an instrumented
run's ``SimStats`` bit-identical (see the differential suite in
``tests/obs``).
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry
from repro.obs.timeseries import TimeSeriesRecorder
from repro.obs.tracer import EVENT_NAMES, PacketTracer

__all__ = ["FabricProbes"]


class FabricProbes:
    """Observability probes for one simulator (and the stack above it)."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        recorder: TimeSeriesRecorder | None = None,
        tracer: PacketTracer | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.recorder = recorder
        self.tracer = tracer
        #: Heap events processed while installed, indexed by event code.
        self.event_counts = [0] * len(EVENT_NAMES)
        self.injections = 0
        self.arrivals = 0
        self.enqueues = 0
        self.transmissions = 0
        self.deliveries = 0
        self.drops = 0
        self.credit_stalls = 0
        #: Global and per-directed-link output-queue high-water (packets).
        self.occupancy_highwater = 0
        self.link_highwater: dict[tuple[int, int], int] = {}
        #: Installed :class:`~repro.obs.anatomy.LatencyAnatomy` (None =
        #: no delay decomposition; the extra hooks cost one test each).
        #: Assigning rebinds the queue hooks — see the property below.
        self._anatomy = None
        self._sim = None

    @classmethod
    def full(
        cls,
        interval: int = 256,
        fraction: float = 0.02,
        seed: int = 0,
        ring_size: int = 256,
        max_records: int = 250_000,
        anatomy: bool = True,
    ) -> "FabricProbes":
        """Probes with timeseries, tracing, and (by default) the latency
        anatomy enabled — the CLI default."""
        registry = MetricsRegistry()
        probes = cls(
            registry=registry,
            recorder=TimeSeriesRecorder(registry, interval=interval),
            tracer=PacketTracer(
                fraction=fraction, seed=seed,
                max_records=max_records, ring_size=ring_size,
            ),
        )
        if anatomy:
            probes.install_anatomy()
        return probes

    def install_anatomy(self, anatomy=None):
        """Attach a :class:`~repro.obs.anatomy.LatencyAnatomy` (a default
        one when *anatomy* is None), register its metric series, and
        return it.  Pass ``None`` to :attr:`anatomy` directly to disable
        decomposition again (registered series keep reporting the last
        accumulated totals).  Idempotent when one is already installed
        and none is passed (no duplicate metric collectors)."""
        if anatomy is None:
            if self._anatomy is not None:
                return self._anatomy
            from repro.obs.anatomy import LatencyAnatomy

            anatomy = LatencyAnatomy()
        self.anatomy = anatomy
        anatomy.register_metrics(self.registry)
        return anatomy

    @property
    def anatomy(self):
        """The installed :class:`LatencyAnatomy`, or None."""
        return self._anatomy

    @anatomy.setter
    def anatomy(self, value) -> None:
        # The three queue hooks exist solely for the anatomy, so while
        # one is installed they bind straight to its methods (instance
        # attributes shadow the guarded class methods below) — one
        # Python call per hop instead of two on the hottest probe path.
        self._anatomy = value
        if value is None:
            for name in ("on_queue_join", "on_dequeue", "on_qos_dequeue"):
                self.__dict__.pop(name, None)
        else:
            self.on_queue_join = value.queue_join
            self.on_dequeue = value.dequeue  # qos defaults False
            self.on_qos_dequeue = value.qos_dequeue

    # -- hot-path hooks (called by NetworkSimulator when installed) --------

    def on_event(self, code: int, now: int) -> None:
        """Per processed heap event: count, ring, timeseries boundary."""
        self.event_counts[code] += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.ring.append((now, code))
        recorder = self.recorder
        if recorder is not None and now >= recorder.next_at:
            recorder.sample(now)

    def on_inject(self, packet, now: int) -> None:
        """Packet handed to the simulator (``send``)."""
        self.injections += 1
        anatomy = self._anatomy
        if anatomy is not None:
            anatomy.inject(packet, now)
        tracer = self.tracer
        if tracer is not None and tracer.traced(packet.pid):
            tracer.hop(now, "inject", packet.pid, packet.src, packet.dst)

    def on_arrive(self, node: int, packet, now: int) -> None:
        """Packet arrived at a router (terminal or transit)."""
        self.arrivals += 1
        anatomy = self._anatomy
        if anatomy is not None:
            anatomy.arrive(packet, now)
        tracer = self.tracer
        if tracer is not None and tracer.traced(packet.pid):
            tracer.hop(now, "arrive", packet.pid, node, packet.dst)

    def on_enqueue(self, node: int, nxt: int, packet, port, now: int) -> None:
        """Packet queued on the output port toward its next hop."""
        self.enqueues += 1
        occ = port.count
        if occ > self.occupancy_highwater:
            self.occupancy_highwater = occ
        link = (node, nxt)
        hw = self.link_highwater
        if occ > hw.get(link, 0):
            hw[link] = occ
        tracer = self.tracer
        if tracer is not None and tracer.traced(packet.pid):
            tracer.hop(now, "enqueue", packet.pid, node, nxt, occ)

    def on_send(self, port, packet, now: int, tail: int) -> None:
        """Packet started transmitting on a wire.

        The anatomy needs no hook here: the dequeue hook fires on the
        same transmission event and ``tail`` is deterministic from it
        (``now + size_flits``), so its send half is folded in there.
        """
        self.transmissions += 1
        tracer = self.tracer
        if tracer is not None and tracer.traced(packet.pid):
            tracer.hop(
                now, "send", packet.pid, port.u, port.v,
                tail + port.lat - now,
                depth=port.count, credit=port.credits[packet.vc],
            )

    def on_deliver(self, packet, now: int) -> None:
        """Packet ejected at its destination."""
        self.deliveries += 1
        anatomy = self._anatomy
        comps = None
        if anatomy is not None:
            comps = anatomy.deliver(packet, now)
        tracer = self.tracer
        if tracer is not None and tracer.traced(packet.pid):
            tracer.hop(
                now, "deliver", packet.pid, packet.dst, packet.src,
                now - packet.inject_time,
            )
            if comps is not None:
                tracer.components(
                    packet.inject_time, packet.pid, packet.dst, comps
                )

    def on_drop(self, packet, now: int) -> None:
        """Packet removed by fault machinery without delivery."""
        self.drops += 1
        anatomy = self._anatomy
        if anatomy is not None:
            anatomy.drop(packet, now)
        tracer = self.tracer
        if tracer is not None and tracer.traced(packet.pid):
            tracer.hop(now, "drop", packet.pid, packet.src, packet.dst)

    def on_credit_stall(self, port, now: int) -> None:
        """Output port went credit-blocked and armed its stall timer."""
        self.credit_stalls += 1
        tracer = self.tracer
        if tracer is not None:
            for queue in port.queues:
                if queue and tracer.traced(queue[0][1].pid):
                    tracer.hop(now, "stall", queue[0][1].pid, port.u, port.v)

    def on_queue_join(self, port, packet, ready: int, now: int) -> None:
        """Packet entered an output queue; head-ready at *ready*."""
        anatomy = self._anatomy
        if anatomy is not None:
            anatomy.queue_join(port, packet, ready, now)

    def on_dequeue(self, port, packet, ready: int, now: int) -> None:
        """Classless arbitration picked *packet* off its output queue."""
        anatomy = self._anatomy
        if anatomy is not None:
            anatomy.dequeue(port, packet, ready, now, False)

    def on_qos_dequeue(self, port, packet, ready: int, now: int) -> None:
        """The QoS arbiter picked *packet* (priority bands + DRR)."""
        anatomy = self._anatomy
        if anatomy is not None:
            anatomy.dequeue(port, packet, ready, now, True)

    # -- wiring ------------------------------------------------------------

    def attach_sim(self, sim) -> "FabricProbes":
        """Install into *sim* and register its pull metrics.

        The fault layer is resolved dynamically at collect time via
        ``sim._fault_layer``, so a layer installed after the probes
        (the usual order in the workload runners) is still covered.
        """
        sim.install_probes(self)
        self._sim = sim
        reg = self.registry
        stats = sim.stats
        reg.counter_probe("sim_packets_sent_total", lambda: stats.sent)
        reg.counter_probe("sim_packets_delivered_total", lambda: stats.delivered)
        reg.counter_probe("sim_packets_dropped_total", lambda: stats.dropped)
        reg.counter_probe("sim_credit_stalls_total", lambda: self.credit_stalls)
        for stage, probe in (
            ("inject", lambda: self.injections),
            ("enqueue", lambda: self.enqueues),
            ("transmit", lambda: self.transmissions),
            ("arrive", lambda: self.arrivals),
            ("deliver", lambda: self.deliveries),
        ):
            reg.counter_probe(
                "sim_packet_hops_total", probe, labels={"stage": stage}
            )
        for code, name in enumerate(EVENT_NAMES):
            reg.counter_probe(
                "sim_events_total",
                lambda code=code: self.event_counts[code],
                labels={"type": name},
            )
        reg.gauge_probe("sim_cycle", lambda: sim.now)
        reg.gauge_probe("sim_pending_events", lambda: sim.pending_events)
        reg.gauge_probe(
            "sim_link_events_elided", lambda: sim.link_events_elided
        )
        reg.gauge_probe("sim_inflight_packets", lambda: stats.in_flight)
        reg.gauge_probe(
            "sim_queue_highwater_packets", lambda: self.occupancy_highwater
        )
        reg.collector(self._collect_faults)
        latency = stats.latency
        if latency.sketch is not None:
            reg.histogram("sim_latency_cycles", latency.sketch)
        return self

    def _collect_faults(self, emit) -> None:
        """Fault-layer metrics, resolved dynamically (layer may be None)."""
        sim = self._sim
        layer = getattr(sim, "_fault_layer", None) if sim is not None else None
        if layer is None:
            return
        for cause, count in sorted(layer.drops.items()):
            emit(
                "fault_drops_total", "counter", count,
                labels={"cause": cause},
            )
        emit("fault_retransmits_total", "counter", layer.retransmits)

    def attach_detector(self, detector) -> "FabricProbes":
        """Register fault-detector metrics (detections, latency sketch)."""
        reg = self.registry
        reg.counter_probe(
            "fault_detections_total", lambda: detector.detections
        )
        reg.counter_probe(
            "fault_absorbed_flaps_total", lambda: detector.absorbed_flaps
        )
        reg.histogram(
            "fault_detection_latency_cycles", detector.detection_latency
        )
        return self

    def attach_migration(self, engine, directory) -> "FabricProbes":
        """Register migration-engine and page-directory metrics."""
        reg = self.registry
        reg.gauge_probe(
            "migration_inflight_pages", lambda: directory.in_flight_count
        )
        reg.counter_probe(
            "migration_pages_moved_total", lambda: engine.total_pages_moved
        )
        reg.counter_probe(
            "migration_bytes_moved_total", lambda: engine.total_bytes_moved
        )
        reg.counter_probe("pages_lost_total", lambda: len(directory.lost))
        for ruling in ("serve", "stall", "forward", "lost"):
            reg.counter_probe(
                "page_rulings_total",
                lambda r=ruling: directory.ruling_counts[r],
                labels={"ruling": ruling},
            )
        return self

    def attach_service(self, service) -> "FabricProbes":
        """Register service-level metrics (queue, shed, tenant latency)."""
        reg = self.registry
        reg.gauge_probe("service_queue_depth", lambda: len(service._queue))
        reg.gauge_probe(
            "service_outstanding_requests", lambda: service.outstanding
        )
        reg.counter_probe("service_shed_total", lambda: service.shed_total)
        reg.counter_probe("service_queued_total", lambda: service.queued_total)
        reg.counter_probe("service_timeouts_total", lambda: service.timeouts)
        reg.counter_probe("service_forwarded_total", lambda: service.forwarded)
        reg.counter_probe("service_stalled_total", lambda: service.stalled)

        def collect_tenants(emit):
            """Per-tenant counters and latency sketches (live label set)."""
            for name in sorted(service.tenants):
                ts = service.tenants[name]
                labels = {"tenant": name}
                emit(
                    "service_requests_submitted_total", "counter",
                    ts.submitted, labels=labels,
                )
                emit(
                    "service_requests_completed_total", "counter",
                    ts.completed, labels=labels,
                )
                emit(
                    "service_requests_shed_total", "counter",
                    ts.shed, labels=labels,
                )
                emit(
                    "service_latency_cycles", "histogram",
                    ts.sketch, labels=labels,
                )

        reg.collector(collect_tenants)

        def collect_classes(emit):
            """Per-traffic-class SLO metrics (QoS services only)."""
            if getattr(service, "_qos", None) is None:
                return
            for name, row in sorted(service.class_summary().items()):
                labels = {"tclass": name}
                emit(
                    "service_class_completed_total", "counter",
                    row["completed"], labels=labels,
                )
                emit(
                    "service_class_shed_total", "counter",
                    row["shed"], labels=labels,
                )
                emit(
                    "service_class_queued", "gauge",
                    row["queued"], labels=labels,
                )
                emit(
                    "service_class_latency_p99_cycles", "gauge",
                    row["p99"], labels=labels,
                )
                emit(
                    "service_class_latency_p50_cycles", "gauge",
                    row["p50"], labels=labels,
                )

        reg.collector(collect_classes)
        return self

    # -- finishing and summaries -------------------------------------------

    def finish(self, now: int) -> None:
        """Flush the timeseries tail window at simulated cycle *now*."""
        if self.recorder is not None:
            self.recorder.flush(now)

    def events_processed(self) -> int:
        """Total heap events seen while installed."""
        return sum(self.event_counts)

    def summary(self) -> dict:
        """Flat JSON-safe roll-up for report tables and artifacts."""
        top_links = sorted(
            self.link_highwater.items(), key=lambda kv: (-kv[1], kv[0])
        )[:8]
        out = {
            "events": {
                name: self.event_counts[code]
                for code, name in enumerate(EVENT_NAMES)
            },
            "events_processed": self.events_processed(),
            "credit_stalls": self.credit_stalls,
            "occupancy_highwater": self.occupancy_highwater,
            "link_highwater_top": [
                {"link": list(link), "highwater": hw} for link, hw in top_links
            ],
        }
        if self.recorder is not None:
            out["ts_rows"] = len(self.recorder.rows)
        if self.tracer is not None:
            out["trace_records"] = len(self.tracer.records)
            out["trace_dropped"] = self.tracer.dropped_records
        if self.anatomy is not None:
            out["anatomy"] = self.anatomy.summary()
        return out
