"""Machine-speed canary: a fixed pure-python microbenchmark.

Recorded performance trajectories (``benchmarks/*.py``) mix numbers
from whatever host happened to run them, which muddies cross-run
comparisons: a 1.2x "regression" may just be a slower machine.  The
canary pins that down — a deterministic workload shaped like the
simulator hot path (heap pushes/pops of small tuples, dict counting,
bounded deque appends) whose throughput measures *this host running
this Python*, independent of the repository's own code evolving.

Every trajectory entry records ``canary_kops``; comparisons then
report canary-normalized ratios (events/sec divided by the host's
canary speed) alongside the raw numbers, so a real code regression
separates from host drift.

The workload is frozen: changing it would invalidate every recorded
trajectory entry.  Do not edit ``_canary_once`` — add a ``v2`` canary
alongside if a different shape is ever needed.
"""

from __future__ import annotations

import heapq
import time
from collections import deque

__all__ = ["CANARY_OPS", "run_canary"]

#: Iterations of the fixed inner loop; the published unit of work.
CANARY_OPS = 20_000


def _canary_once() -> dict[int, int]:
    """One pass of the frozen workload (LCG-driven heap/dict/deque mix)."""
    heap: list[tuple[int, int, int]] = []
    push = heapq.heappush
    pop = heapq.heappop
    table: dict[int, int] = {}
    ring: deque = deque(maxlen=64)
    seq = 0
    x = 0x2545F491
    for i in range(CANARY_OPS):
        x = (x * 1103515245 + 12345) & 0x7FFFFFFF
        seq += 1
        push(heap, (x & 0xFFFF, seq, i & 7))
        if len(heap) > 512:
            t, _s, c = pop(heap)
            table[c] = table.get(c, 0) + 1
            ring.append((t, c))
    while heap:
        t, _s, c = pop(heap)
        table[c] = table.get(c, 0) + 1
    return table


def run_canary(repeats: int = 3) -> dict[str, float]:
    """Run the canary ``repeats`` times; report best-of throughput.

    Returns ``{"ops", "seconds", "kops"}`` where ``kops`` is thousands
    of canary loop iterations per second (best of *repeats*, the same
    convention as the perf benchmarks).
    """
    best = float("inf")
    checksum = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        table = _canary_once()
        elapsed = time.perf_counter() - t0
        best = min(best, elapsed)
        if checksum is None:
            checksum = sorted(table.items())
        elif sorted(table.items()) != checksum:
            raise RuntimeError("canary workload is not deterministic")
    return {
        "ops": float(CANARY_OPS),
        "seconds": best,
        "kops": CANARY_OPS / best / 1000.0,
    }
