"""Sampling packet flight recorder and simulator event ring.

Two complementary recorders:

* **Hop records** — for a deterministic, seeded fraction of packet ids
  the tracer captures every lifecycle hook (``inject``, ``enqueue``,
  ``send``, ``arrive``, ``deliver``, ``stall``, ``drop``) with its
  cycle timestamp.  Selection is a pure hash of ``(pid, seed)`` — no
  RNG state — so the same run traces the same packets regardless of
  what else is instrumented.
* **Event ring** — a bounded ``deque`` of the last N ``(cycle, code)``
  simulator events, cheap enough to keep always-on while probes are
  installed, dumped post-mortem when a conservation check fails.

Exports: JSONL (one record per line) and Chrome ``trace_event`` JSON
(the ``{"traceEvents": [...]}`` shape Perfetto and ``chrome://tracing``
load directly).  In the Chrome export each traced packet is a track
(``tid``); wire occupancy becomes complete (``"ph": "X"``) slices and
the point events become instants.
"""

from __future__ import annotations

import json
from collections import deque

__all__ = ["PacketTracer"]

#: Event-code names, indexed by the simulator's event code ints.
EVENT_NAMES = ("arrive", "link_free", "call", "wake", "stall")


class PacketTracer:
    """Flight recorder for a seeded fraction of packets."""

    def __init__(
        self,
        fraction: float = 0.02,
        seed: int = 0,
        max_records: int = 250_000,
        ring_size: int = 256,
    ) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        self.fraction = fraction
        self.seed = seed
        self.max_records = max_records
        #: ``(cycle, kind, pid, node, peer, extra, depth, credit)``
        #: tuples, in order.  ``depth`` is the output-queue occupancy
        #: and ``credit`` the remaining VC credit at send time; both are
        #: -1 on records where they do not apply.
        self.records: list[tuple] = []
        self.dropped_records = 0
        self.ring: deque = deque(maxlen=ring_size)
        self._threshold = int(fraction * float(1 << 32))

    def traced(self, pid: int) -> bool:
        """Deterministic sampling decision for packet id *pid*."""
        h = ((pid ^ (self.seed * 0x85EBCA6B)) * 0x9E3779B1) & 0xFFFFFFFF
        h ^= h >> 15
        return h < self._threshold

    def hop(
        self, cycle: int, kind: str, pid: int,
        node: int = -1, peer: int = -1, extra: int = 0,
        depth: int = -1, credit: int = -1,
    ) -> None:
        """Append one hop record (bounded by ``max_records``)."""
        if len(self.records) >= self.max_records:
            self.dropped_records += 1
            return
        self.records.append(
            (cycle, kind, pid, node, peer, extra, depth, credit)
        )

    def components(
        self, inject_time: int, pid: int, node: int, comps,
    ) -> None:
        """Record a delivered packet's delay decomposition as one
        ``c:<name>`` record per nonzero component.

        The records are laid end to end from *inject_time* in component
        order, so the Chrome export shows a stacked per-component bar
        whose total width is the packet's end-to-end latency — a
        *composition* view (each slice's width is that component's
        cycle count), not a timeline of when the cycles were spent.
        """
        from repro.obs.anatomy import COMPONENTS

        start = inject_time
        for name, cycles in zip(COMPONENTS, comps):
            if not cycles:
                continue
            self.hop(start, f"c:{name}", pid, node, -1, cycles)
            start += cycles

    def note_event(self, cycle: int, code: int) -> None:
        """Push one simulator event onto the post-mortem ring."""
        self.ring.append((cycle, code))

    # -- exports -----------------------------------------------------------

    def ring_dump(self) -> list[dict]:
        """The event ring as JSON-safe dicts (most recent last)."""
        return [
            {"cycle": cycle, "code": code, "type": EVENT_NAMES[code]}
            for cycle, code in self.ring
        ]

    def to_jsonl(self) -> str:
        """One JSON object per hop record, newline-separated.

        ``depth``/``credit`` keys appear only on records that carry
        them (send records), keeping the lines compact.
        """
        lines = []
        for cycle, kind, pid, node, peer, extra, depth, credit in (
            self.records
        ):
            row = {
                "cycle": cycle, "kind": kind, "pid": pid,
                "node": node, "peer": peer, "extra": extra,
            }
            if depth >= 0:
                row["queue_depth"] = depth
            if credit >= 0:
                row["credit"] = credit
            lines.append(json.dumps(row))
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path: str) -> None:
        """Write :meth:`to_jsonl` to *path*."""
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())

    def chrome_trace(self) -> dict:
        """Chrome ``trace_event`` JSON object (Perfetto-loadable).

        ``ts`` is in microseconds by the format's convention; we map
        one simulated cycle to one microsecond, so durations read
        directly as cycles.  Each traced packet gets its own thread
        track named ``pkt <pid>``; ``send`` records (which carry the
        wire-occupancy duration in ``extra``) become complete slices
        annotated with queue depth and credit state, ``c:<component>``
        records (the per-packet delay decomposition) become stacked
        complete slices laid end to end from injection, and everything
        else becomes instant events.
        """
        events: list[dict] = [{
            "ph": "M", "name": "process_name", "pid": 0, "tid": 0,
            "args": {"name": "repro-fabric"},
        }]
        seen_pids: set[int] = set()
        for cycle, kind, pid, node, peer, extra, depth, credit in (
            self.records
        ):
            if pid not in seen_pids:
                seen_pids.add(pid)
                events.append({
                    "ph": "M", "name": "thread_name", "pid": 0, "tid": pid,
                    "args": {"name": f"pkt {pid}"},
                })
            args = {"node": node, "peer": peer}
            if kind == "send":
                if depth >= 0:
                    args["queue_depth"] = depth
                if credit >= 0:
                    args["credit"] = credit
                events.append({
                    "name": f"{node}->{peer}", "cat": "hop", "ph": "X",
                    "ts": cycle, "dur": max(1, extra), "pid": 0, "tid": pid,
                    "args": args,
                })
            elif kind.startswith("c:"):
                events.append({
                    "name": kind[2:], "cat": "component", "ph": "X",
                    "ts": cycle, "dur": max(1, extra), "pid": 0, "tid": pid,
                    "args": {"cycles": extra},
                })
            else:
                if kind == "deliver":
                    args["latency"] = extra
                elif kind == "enqueue":
                    args["queue_depth"] = extra
                events.append({
                    "name": kind, "cat": "packet", "ph": "i", "s": "t",
                    "ts": cycle, "pid": 0, "tid": pid, "args": args,
                })
        return {"traceEvents": events, "displayTimeUnit": "ns"}

    def write_chrome(self, path: str) -> None:
        """Write :meth:`chrome_trace` as JSON to *path*."""
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh)
