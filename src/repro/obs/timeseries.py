"""Cycle-domain timeseries sampling over a :class:`MetricsRegistry`.

The recorder never schedules simulator events (that would perturb the
deterministic core); instead the probe layer checks ``next_at`` on
every processed event and calls :meth:`TimeSeriesRecorder.sample` at
the first event on or past each interval boundary.  Rows therefore
land on *event* cycles, not exact multiples of the interval — the
correct behavior for a discrete-event core where nothing observable
happens between events.

Counter columns are recorded as **per-row deltas** (the increment
since the previous row), so after a :meth:`flush` the column sums
reconcile *exactly* with the final counter totals — the property
``repro trace`` asserts against ``SimStats``.  Gauges are recorded as
point-in-time values; histograms as cheap ``count``/``mean`` pairs
(full quantiles stay a scrape-time concern, see
:meth:`~repro.obs.registry.MetricsRegistry.snapshot`).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry

__all__ = ["TimeSeriesRecorder"]


class TimeSeriesRecorder:
    """Sample registry metrics every *interval* simulated cycles."""

    def __init__(self, registry: "MetricsRegistry", interval: int = 256) -> None:
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self.registry = registry
        self.interval = interval
        #: Next boundary; the probe layer compares ``now >= next_at``
        #: on its per-event hook, so this stays a plain attribute.
        self.next_at = interval
        self.rows: list[dict] = []
        self._last: dict[str, float] = {}

    def sample(self, now: int) -> None:
        """Record one row at simulated cycle *now* and advance the boundary."""
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        last = self._last
        for s in self.registry.collect():
            if s.kind == "counter":
                key = s.key
                counters[key] = s.value - last.get(key, 0)
                last[key] = s.value
            elif s.kind == "gauge":
                gauges[s.key] = s.value
            else:
                sketch = s.value
                count = sketch.count
                if count:
                    total = 0.0
                    for value, n in sketch.counts.items():
                        total += value * n
                    gauges[s.key + ":mean"] = total / count
                gauges[s.key + ":count"] = count
        self.rows.append({"cycle": now, "counters": counters, "gauges": gauges})
        # Strictly-future boundary, aligned to the interval grid.
        self.next_at = now - (now % self.interval) + self.interval

    def flush(self, now: int) -> None:
        """Record the tail window so counter sums match final totals."""
        if not self.rows or self.rows[-1]["cycle"] != now or self._dirty():
            self.sample(now)

    def _dirty(self) -> bool:
        """True when any counter moved since the last recorded row."""
        last = self._last
        for s in self.registry.collect():
            if s.kind == "counter" and s.value != last.get(s.key, 0):
                return True
        return False

    def sum_counters(self) -> dict[str, float]:
        """Column sums of every counter delta across recorded rows.

        After :meth:`flush` this equals the final counter totals —
        the reconciliation invariant the trace CLI checks.
        """
        totals: dict[str, float] = {}
        for row in self.rows:
            for key, delta in row["counters"].items():
                totals[key] = totals.get(key, 0) + delta
        return totals

    def to_jsonl(self) -> str:
        """One JSON object per row, newline-separated."""
        return "\n".join(
            json.dumps(row, sort_keys=True) for row in self.rows
        ) + ("\n" if self.rows else "")

    def write_jsonl(self, path: str) -> None:
        """Write :meth:`to_jsonl` to *path*."""
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())
