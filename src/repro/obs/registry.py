"""Labeled metrics registry with pull-probes and Prometheus exposition.

Three metric kinds cover the stack:

* **counter** — monotonically increasing totals (events processed,
  packets delivered).  Named ``*_total`` by convention.
* **gauge** — point-in-time values (queue depth, in-flight pages).
* **histogram** — distributions backed by the simulator's exact
  :class:`~repro.network.stats.QuantileSketch` (latency, detection
  lag); exposed as Prometheus *summaries* (quantile-labeled samples
  plus ``_count``/``_sum``).

Besides push-style :class:`Counter`/:class:`Gauge` objects, the
registry supports **pull probes** (a callable resolved at collect
time — the natural fit for counters the simulator already keeps, like
``stats.delivered``) and **collectors** (a callable that emits any
number of samples at collect time — the fit for per-tenant or
per-link families whose label sets grow during the run).

Metric names follow Prometheus conventions: ``snake_case``, a unit
suffix, ``_total`` for counters, and every name is prefixed with the
registry namespace (default ``repro``).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.network.stats import QuantileSketch

__all__ = ["Counter", "Gauge", "MetricSample", "MetricsRegistry"]

#: Quantiles exported for histogram metrics (Prometheus summary style).
_QUANTILES = (50.0, 90.0, 99.0)


def _label_key(labels: dict[str, str] | None) -> tuple[tuple[str, str], ...]:
    """Canonical hashable form of a label set."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    """Escape a label value for the Prometheus text format."""
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def render_labels(labels: Iterable[tuple[str, str]]) -> str:
    """``{k="v",...}`` rendering shared by exposition and snapshots."""
    pairs = list(labels)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + inner + "}"


class MetricSample:
    """One resolved sample: ``(name, kind, labels, value)``.

    For histograms ``value`` is the backing
    :class:`~repro.network.stats.QuantileSketch` plus a running sum,
    packed as ``(sketch, total)``; counters and gauges carry a number.
    """

    __slots__ = ("name", "kind", "labels", "value")

    def __init__(self, name: str, kind: str, labels, value) -> None:
        self.name = name
        self.kind = kind
        self.labels = labels
        self.value = value

    @property
    def key(self) -> str:
        """Stable string identity, e.g. ``repro_x_total{type="wake"}``."""
        return self.name + render_labels(self.labels)


class Counter:
    """Push-style monotonic counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (must be >= 0 to stay monotonic)."""
        self.value += amount


class Gauge:
    """Push-style point-in-time gauge."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = value

    def track_max(self, value: float) -> None:
        """Keep the high-water mark of every value seen."""
        if value > self.value:
            self.value = value


class MetricsRegistry:
    """Registry of named, labeled metrics resolved at collect time."""

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        # key -> (full_name, kind, label_pairs, resolver)
        self._metrics: dict[tuple, tuple] = {}
        self._collectors: list[Callable] = []

    # -- registration ------------------------------------------------------

    def _full(self, name: str) -> str:
        return f"{self.namespace}_{name}" if self.namespace else name

    def _register(self, name: str, kind: str, labels, resolver):
        full = self._full(name)
        pairs = _label_key(labels)
        key = (full, pairs)
        existing = self._metrics.get(key)
        if existing is not None:
            if existing[1] != kind:
                raise ValueError(
                    f"metric {full}{render_labels(pairs)} re-registered as "
                    f"{kind} (was {existing[1]})"
                )
            self._metrics[key] = (full, kind, pairs, resolver)
            return resolver
        self._metrics[key] = (full, kind, pairs, resolver)
        return resolver

    def counter(self, name: str, labels: dict[str, str] | None = None) -> Counter:
        """Create (or replace) a push counter and return it."""
        c = Counter()
        self._register(name, "counter", labels, c)
        return c

    def gauge(self, name: str, labels: dict[str, str] | None = None) -> Gauge:
        """Create (or replace) a push gauge and return it."""
        g = Gauge()
        self._register(name, "gauge", labels, g)
        return g

    def counter_probe(
        self, name: str, fn: Callable[[], float],
        labels: dict[str, str] | None = None,
    ) -> None:
        """Register a pull counter: *fn* is read at each collect."""
        self._register(name, "counter", labels, fn)

    def gauge_probe(
        self, name: str, fn: Callable[[], float],
        labels: dict[str, str] | None = None,
    ) -> None:
        """Register a pull gauge: *fn* is read at each collect."""
        self._register(name, "gauge", labels, fn)

    def histogram(
        self, name: str, sketch: QuantileSketch | None = None,
        labels: dict[str, str] | None = None,
    ) -> QuantileSketch:
        """Register a live :class:`QuantileSketch` view and return it.

        The registry keeps a *reference*: values added to the sketch
        after registration show up in later collects, so existing
        accumulators (tenant latency, detection lag) plug in directly.
        """
        if sketch is None:
            sketch = QuantileSketch()
        self._register(name, "histogram", labels, sketch)
        return sketch

    def collector(self, fn: Callable) -> None:
        """Register ``fn(emit)``; it may emit any samples at collect.

        ``emit(name, kind, value, labels=None)`` takes the same kinds
        as the static registrations (histogram values must be
        :class:`QuantileSketch` instances).
        """
        self._collectors.append(fn)

    # -- collection --------------------------------------------------------

    def collect(self) -> list[MetricSample]:
        """Resolve every metric (push, pull, and collector) to samples."""
        out: list[MetricSample] = []
        for full, kind, pairs, resolver in self._metrics.values():
            if kind == "histogram":
                out.append(MetricSample(full, kind, pairs, resolver))
            elif isinstance(resolver, (Counter, Gauge)):
                out.append(MetricSample(full, kind, pairs, resolver.value))
            else:
                out.append(MetricSample(full, kind, pairs, resolver()))

        def emit(name, kind, value, labels=None):
            """Collector callback: append one dynamically-labeled sample."""
            out.append(
                MetricSample(self._full(name), kind, _label_key(labels), value)
            )

        for fn in self._collectors:
            fn(emit)
        return out

    @staticmethod
    def _sketch_stats(sketch: QuantileSketch) -> tuple[int, float]:
        total = 0.0
        for value, n in sketch.counts.items():
            total += value * n
        return sketch.count, total

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe snapshot keyed by sample identity.

        Histogram entries expand to ``count``/``sum``/``p50``/``p90``/
        ``p99`` so the snapshot round-trips through JSON without the
        backing sketch.
        """
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict[str, float]] = {}
        for s in self.collect():
            if s.kind == "counter":
                counters[s.key] = counters.get(s.key, 0) + s.value
            elif s.kind == "gauge":
                gauges[s.key] = s.value
            else:
                count, total = self._sketch_stats(s.value)
                histograms[s.key] = {
                    "count": count,
                    "sum": total,
                    **{f"p{q:g}": s.value.percentile(q) for q in _QUANTILES},
                }
        return {
            "counters": counters, "gauges": gauges, "histograms": histograms,
        }

    def to_prometheus(self) -> str:
        """Render the Prometheus text exposition format (version 0.0.4).

        Histograms are rendered as summaries: quantile-labeled sample
        lines plus ``_count`` and ``_sum``.
        """
        by_name: dict[str, tuple[str, list[MetricSample]]] = {}
        for s in self.collect():
            entry = by_name.setdefault(s.name, (s.kind, []))
            entry[1].append(s)
        lines: list[str] = []
        for name in sorted(by_name):
            kind, samples = by_name[name]
            prom_type = "summary" if kind == "histogram" else kind
            lines.append(f"# TYPE {name} {prom_type}")
            for s in sorted(samples, key=lambda s: s.labels):
                if kind == "histogram":
                    count, total = self._sketch_stats(s.value)
                    for q in _QUANTILES:
                        labels = s.labels + (("quantile", f"{q / 100.0:g}"),)
                        value = s.value.percentile(q)
                        lines.append(
                            f"{name}{render_labels(labels)} {value:g}"
                        )
                    suffix = render_labels(s.labels)
                    lines.append(f"{name}_count{suffix} {count}")
                    lines.append(f"{name}_sum{suffix} {total:g}")
                else:
                    lines.append(f"{s.key} {s.value:g}")
        return "\n".join(lines) + "\n"
