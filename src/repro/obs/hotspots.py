"""Hotspot analytics: where the queueing cycles actually go.

:class:`HotspotAggregator` rolls the per-dequeue measurements that
:class:`~repro.obs.anatomy.LatencyAnatomy` feeds it into the three
views operators actually ask for when a p99 moves:

* **per-link contention** — for every directed link, an exact
  :class:`~repro.network.stats.QuantileSketch` of queue-wait cycles
  (measured head-ready to transmission start) and of output-queue
  occupancy at enqueue time, plus total blocked cycles — the ranking
  key of the top-K contended-links report;
* **per-router roll-ups** — the same totals summed over each router's
  *outgoing* links (the queues live at the upstream router, so that is
  where the blocked packets physically sit);
* **class-on-class interference** — a K x K matrix of cycles packets
  of class *i* spent blocked while a packet of class *j* occupied the
  wire they were waiting for (the causal attribution behind "bulk is
  starving latency on these links").

Everything here is pure accumulation — no events, no sequence numbers
— so it inherits the bit-identicality guarantee of the probes layer.
"""

from __future__ import annotations

from typing import Any

from repro.network.stats import QuantileSketch

__all__ = ["HotspotAggregator", "LinkContention"]


class LinkContention:
    """Contention accumulators for one directed link ``u -> v``."""

    __slots__ = ("u", "v", "enqueues", "dequeues", "wait_cycles",
                 "wait_sketch", "occupancy_sketch")

    def __init__(self, u: int, v: int) -> None:
        self.u = u
        self.v = v
        self.enqueues = 0
        self.dequeues = 0
        #: Total cycles packets spent head-ready but not transmitting.
        self.wait_cycles = 0
        self.wait_sketch = QuantileSketch()
        self.occupancy_sketch = QuantileSketch()

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe row (one line of the per-link CSV / report)."""
        return {
            "link": [self.u, self.v],
            "enqueues": self.enqueues,
            "dequeues": self.dequeues,
            "wait_cycles": self.wait_cycles,
            "wait_p50": self.wait_sketch.percentile(50),
            "wait_p99": self.wait_sketch.percentile(99),
            "wait_max": self.wait_sketch.percentile(100),
            "occupancy_p50": self.occupancy_sketch.percentile(50),
            "occupancy_p99": self.occupancy_sketch.percentile(99),
            "occupancy_max": self.occupancy_sketch.percentile(100),
        }


class HotspotAggregator:
    """Per-link/per-router contention views plus the interference matrix."""

    #: Columns of :meth:`links_csv`, in order.
    CSV_FIELDS = (
        "u", "v", "enqueues", "dequeues", "wait_cycles", "wait_p50",
        "wait_p99", "wait_max", "occupancy_p50", "occupancy_p99",
        "occupancy_max",
    )

    def __init__(self) -> None:
        #: Directed link (u, v) -> accumulators.
        self.links: dict[tuple[int, int], LinkContention] = {}
        #: ``matrix[i][j]`` = cycles class *i* spent blocked behind a
        #: transmitting class-*j* packet (sparse nested dicts).
        self.matrix: dict[int, dict[int, int]] = {}

    # -- accumulation (called by LatencyAnatomy on the hook path) ----------

    def link(self, u: int, v: int) -> LinkContention:
        """The accumulator of directed link ``u -> v`` (made on demand)."""
        key = (u, v)
        entry = self.links.get(key)
        if entry is None:
            entry = LinkContention(u, v)
            self.links[key] = entry
        return entry

    def note_enqueue(self, entry: LinkContention, occupancy: int) -> None:
        """One packet joined the link's output queue at *occupancy*."""
        entry.enqueues += 1
        entry.occupancy_sketch.add(occupancy)

    def note_wait(self, entry: LinkContention, wait: int) -> None:
        """One packet left the queue after *wait* head-ready cycles."""
        entry.dequeues += 1
        entry.wait_cycles += wait
        entry.wait_sketch.add(wait)

    def note_blocking(self, blocked_cls: int, behind_cls: int,
                      cycles: int) -> None:
        """*blocked_cls* spent *cycles* behind a *behind_cls* packet."""
        row = self.matrix.get(blocked_cls)
        if row is None:
            row = {}
            self.matrix[blocked_cls] = row
        row[behind_cls] = row.get(behind_cls, 0) + cycles

    # -- reports -----------------------------------------------------------

    def top_links(self, k: int = 8) -> list[LinkContention]:
        """The *k* most contended links by total blocked cycles."""
        return sorted(
            self.links.values(),
            key=lambda e: (-e.wait_cycles, e.u, e.v),
        )[:k]

    def router_rollup(self, k: int = 8) -> list[dict[str, Any]]:
        """Per-router contention (outgoing links summed), top *k*."""
        per_router: dict[int, dict[str, int]] = {}
        for entry in self.links.values():
            row = per_router.setdefault(
                entry.u, {"router": entry.u, "wait_cycles": 0,
                          "dequeues": 0, "links": 0},
            )
            row["wait_cycles"] += entry.wait_cycles
            row["dequeues"] += entry.dequeues
            row["links"] += 1
        return sorted(
            per_router.values(),
            key=lambda r: (-r["wait_cycles"], r["router"]),
        )[:k]

    def matrix_table(
        self, class_names: dict[int, str] | None = None
    ) -> dict[str, dict[str, int]]:
        """The interference matrix with readable class labels.

        Keys are blocked-class names, values map blocking-class name to
        cycles.  Unmapped ids label as ``cls<N>``.
        """
        names = class_names or {}

        def label(cls: int) -> str:
            return names.get(cls, f"cls{cls}")

        return {
            label(i): {
                label(j): cycles
                for j, cycles in sorted(row.items())
            }
            for i, row in sorted(self.matrix.items())
        }

    def links_csv(self) -> str:
        """All per-link rows as CSV text (header + one row per link)."""
        lines = [",".join(self.CSV_FIELDS)]
        for entry in sorted(
            self.links.values(),
            key=lambda e: (-e.wait_cycles, e.u, e.v),
        ):
            row = entry.to_dict()
            lines.append(",".join(str(x) for x in (
                entry.u, entry.v, row["enqueues"], row["dequeues"],
                row["wait_cycles"], row["wait_p50"], row["wait_p99"],
                row["wait_max"], row["occupancy_p50"],
                row["occupancy_p99"], row["occupancy_max"],
            )))
        return "\n".join(lines) + "\n"

    def summary(
        self,
        top_k: int = 8,
        class_names: dict[int, str] | None = None,
    ) -> dict[str, Any]:
        """JSON-safe roll-up (artifacts, daemon stats, report tables)."""
        return {
            "links_tracked": len(self.links),
            "top_links": [e.to_dict() for e in self.top_links(top_k)],
            "top_routers": self.router_rollup(top_k),
            "interference_matrix": self.matrix_table(class_names),
        }
