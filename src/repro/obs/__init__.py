"""Observability: metrics registry, timeseries, flight recorder, probes.

The package instruments the deterministic core *without perturbing it*:
every hook into :class:`~repro.network.simulator.NetworkSimulator` (and
the fault/memory/service layers above it) sits behind a single
``is None`` test — the same idiom as ``install_fault_layer`` — so an
uninstrumented run is bit-identical to a pre-observability run, and an
instrumented run produces bit-identical ``SimStats`` because probes
only *read* simulator state and never schedule events or allocate
sequence numbers.

Layout:

* :mod:`repro.obs.registry` — labeled counters/gauges/histograms with
  pull-probes, JSON snapshots, and Prometheus text exposition.
* :mod:`repro.obs.timeseries` — cycle-domain sampler producing JSONL
  rows whose counter deltas sum exactly to the final totals.
* :mod:`repro.obs.tracer` — sampling packet flight recorder (hop-by-hop
  records, Chrome ``trace_event`` export) plus a bounded ring of the
  last N simulator events for post-mortem dumps.
* :mod:`repro.obs.probes` — :class:`FabricProbes`, the object a
  simulator/service accepts via ``install_probes``; wires the three
  pieces above into the whole stack.
* :mod:`repro.obs.canary` — fixed pure-python microbenchmark used to
  normalize recorded performance numbers across hosts.
* :mod:`repro.obs.anatomy` — per-packet delay decomposition with an
  exact conservation law (component sums == end-to-end latency).
* :mod:`repro.obs.hotspots` — per-link/per-router contention views and
  the class-on-class interference matrix the anatomy feeds.
"""

from repro.obs.anatomy import COMPONENTS, LatencyAnatomy
from repro.obs.canary import run_canary
from repro.obs.hotspots import HotspotAggregator
from repro.obs.probes import FabricProbes
from repro.obs.registry import MetricsRegistry
from repro.obs.timeseries import TimeSeriesRecorder
from repro.obs.tracer import PacketTracer

__all__ = [
    "COMPONENTS",
    "FabricProbes",
    "HotspotAggregator",
    "LatencyAnatomy",
    "MetricsRegistry",
    "PacketTracer",
    "TimeSeriesRecorder",
    "run_canary",
]
