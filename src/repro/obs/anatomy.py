"""Per-packet latency anatomy: an exact delay decomposition.

:class:`LatencyAnatomy` splits every delivered packet's end-to-end
latency into physically-attributed components:

``router``
    Pipeline cycles between an arrival and the packet becoming
    head-ready on its output queue (``router_cycles`` per traversal).
``queueing``
    Head-ready cycles spent waiting while the outbound wire carried
    *same-class* traffic (or any traffic on the classless path).
``arbitration``
    Head-ready cycles spent waiting while the wire carried a *different
    class* under an installed QoS table — the DRR/priority hold.
``credit_stall``
    Head-ready cycles with the wire idle: blocked on downstream
    VC/credit availability (or a frozen link), not on occupancy.
``serialization``
    Cycles the packet's own flits occupied its outbound wires.
``wire``
    SerDes plus wire-propagation cycles.
``requeue``
    Cycles spent parked at a hung router, held in a reconfiguration
    window, or between being swept off a dead link and re-entering —
    the fault/elasticity detour time.

**The conservation law.**  Components are *telescoping deltas between
hook timestamps*: every hook charges ``now - last`` to exactly one
component and advances ``last``, so on delivery the component sum
equals ``arrive_time - inject_time`` **exactly, per packet, by
construction** — checked anyway on every delivery, with violations
counted and surfaced (tests and ``repro trace`` fail on any).

Queue-wait attribution keeps the same exactness: the wait window
``[ready, send)`` is intersected with the recorded busy segments of the
outbound wire (each ``(start, end, tclass)`` of a transmission), the
covered cycles are charged to ``queueing``/``arbitration`` and to the
blocking class in the interference matrix, and the *uncovered*
remainder — wire idle, so the hold was flow control — is
``credit_stall``.  Segment lists are pruned (``segment_limit``) with a
base offset, so a pathological multi-thousand-cycle wait may see its
oldest blocking attributed to ``credit_stall``; the per-packet sum
stays exact regardless.

DRAM service is deliberately *not* a network component: the network
decomposition covers injection to ejection.  The service layer adds
``admission`` (submit to inject) and ``dram`` (everything between the
request legs) as remainders per request — see
``FabricService`` slow-request records and ``docs/LATENCY.md``.

Installed via :meth:`repro.obs.FabricProbes.install_anatomy`; when
absent every probe hook pays one ``is None`` test, and the simulator
itself stays bit-identical either way (the hooks never schedule events
or allocate sequence numbers).  Packets injected before a mid-run
install carry no state and are skipped whole (counted in
``preinstall_skips``), which is what makes the daemon's lazy
first-scrape install safe.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.obs.hotspots import HotspotAggregator

__all__ = ["COMPONENTS", "LatencyAnatomy"]

#: Component names, in report order.  Indices below must match.
COMPONENTS = (
    "router", "queueing", "arbitration", "credit_stall",
    "serialization", "wire", "requeue",
)
_ROUTER, _QUEUEING, _ARBITRATION, _CREDIT_STALL = 0, 1, 2, 3
_SERIALIZATION, _WIRE, _REQUEUE = 4, 5, 6
_NCOMP = len(COMPONENTS)

# Per-packet state slots (a flat list is ~2x faster than an object
# here), parked on the packet's ``obs_state`` field at inject and
# cleared at deliver/drop so each hook pays one attribute load.
# [0] in_flight flag (True between send/inject and the next arrival)
# [1] last hook timestamp (the telescoping cursor)
# [2] traffic class
# [3] absolute segment index of the outbound wire at queue join
# [4:4+_NCOMP] component accumulators
_ST_FLY, _ST_LAST, _ST_CLS, _ST_SEG = 0, 1, 2, 3
_ST_COMP = 4


class _WireState:
    """Per-directed-wire hot state: busy segments + link accumulator.

    Parked directly on the port's ``obs_wire`` slot (ports are stable
    for a simulator's lifetime) so the per-hop hooks pay a single
    attribute load.  ``owner`` ties the state to one anatomy instance:
    a freshly installed anatomy on the same simulator sees a foreign
    owner and rebuilds, never feeding a predecessor's aggregator.
    """

    __slots__ = ("segs", "base", "link", "owner")

    def __init__(self, link, owner) -> None:
        #: (start, end, tclass) per transmission, append-ordered (and
        #: therefore sorted by start — sends happen at non-decreasing
        #: ``now``).
        self.segs: list[tuple[int, int, int]] = []
        #: Count of segments pruned off the front (keeps the absolute
        #: indices recorded at queue join valid).
        self.base = 0
        #: The hotspot aggregator's LinkContention row for this wire.
        self.link = link
        #: The LatencyAnatomy this state belongs to.
        self.owner = owner


class LatencyAnatomy:
    """Delay decomposition + hotspot feed for one instrumented simulator."""

    def __init__(
        self,
        class_names: dict[int, str] | None = None,
        segment_limit: int = 4096,
        svc_index_limit: int = 8192,
    ) -> None:
        if class_names is None:
            # The repo-wide default table convention (PR-9): ids are
            # meaningful even on classless runs because packets carry
            # the tag regardless of whether a table is installed.
            class_names = {0: "latency", 1: "bulk", 2: "background"}
        #: Class id -> readable name for matrix/metric labels.
        self.class_names: dict[int, str] = dict(class_names)
        self.segment_limit = max(64, segment_limit)
        self.hotspots = HotspotAggregator()
        #: Per-class totals: class id -> [delivered, latency_sum,
        #: comp0..compN] (latency_sum == sum of the component columns —
        #: the aggregate face of the conservation law).
        self.class_totals: dict[int, list[int]] = {}
        self.delivered = 0
        self.dropped = 0
        self.retransmit_resets = 0
        #: Packets seen at a lifecycle hook with no inject record
        #: (injected before a mid-run install) — skipped whole.
        self.preinstall_skips = 0
        self.conservation_violations = 0
        #: First few violating packets, for diagnosis.
        self.violation_examples: list[dict[str, Any]] = []
        #: Service-request component index: ("svc", seq) context packets
        #: fold their breakdown here, summed across legs, popped by the
        #: service at completion (FIFO-bounded against leaks from
        #: requests that complete without a network leg).
        self._svc: dict[Any, list[int]] = {}
        self._svc_order: deque = deque()
        self._svc_limit = svc_index_limit

    # -- hook feed (called via FabricProbes, hot path) ---------------------

    def inject(self, packet, now: int) -> None:
        if packet.obs_state is not None:
            # The fault layer re-sent this very packet object (clones
            # get fresh pids): inject_time was reset, so the clock — and
            # the decomposition — restarts with it.
            self.retransmit_resets += 1
        # [fly, last, cls, seg, comp0..comp6] — literal, one allocation.
        packet.obs_state = [True, now, packet.tclass, 0, 0, 0, 0, 0, 0, 0, 0]

    def arrive(self, packet, now: int) -> None:
        st = packet.obs_state
        if st is None:
            self.preinstall_skips += 1
            return
        delta = now - st[_ST_LAST]
        if delta:
            if st[_ST_FLY]:
                st[_ST_COMP + _WIRE] += delta
            else:
                # A second arrival without a send in between: the packet
                # was parked (hung router / reconfig window) or swept
                # off a disabled link and re-entered.
                st[_ST_COMP + _REQUEUE] += delta
        st[_ST_FLY] = False
        st[_ST_LAST] = now

    def _wire(self, port) -> _WireState:
        # The two per-hop hooks below inline this body — any change
        # here must be mirrored there.
        wire = port.obs_wire
        if wire is None or wire.owner is not self:
            wire = _WireState(self.hotspots.link(port.u, port.v), self)
            port.obs_wire = wire
        return wire

    def queue_join(self, port, packet, ready: int, now: int) -> None:
        wire = port.obs_wire
        if wire is None or wire.owner is not self:
            wire = _WireState(self.hotspots.link(port.u, port.v), self)
            port.obs_wire = wire
        st = packet.obs_state
        if st is not None:
            st[_ST_SEG] = wire.base + len(wire.segs)
        # HotspotAggregator.note_enqueue, inlined (once per hop; the
        # sketch is a plain value->count map by contract).
        link = wire.link
        link.enqueues += 1
        occ = port.count
        sketch = link.occupancy_sketch
        sketch.count += 1
        counts = sketch.counts
        counts[occ] = counts.get(occ, 0) + 1

    def qos_dequeue(self, port, packet, ready: int, now: int) -> None:
        """Hook target for the QoS arbiter (``on_qos_dequeue``)."""
        self.dequeue(port, packet, ready, now, True)

    def dequeue(self, port, packet, ready: int, now: int,
                qos: bool = False) -> None:
        """Transmission start (fires once per hop, on the same event as
        ``on_send``): splits the head-ready wait, charges serialization
        (``tail == now + size_flits`` is deterministic here), and
        records the wire's busy segment."""
        wire = port.obs_wire
        if wire is None or wire.owner is not self:
            wire = _WireState(self.hotspots.link(port.u, port.v), self)
            port.obs_wire = wire
        tail = now + packet.size_flits
        segs = wire.segs
        st = packet.obs_state
        if st is not None:
            st[_ST_COMP + _ROUTER] += ready - st[_ST_LAST]
            wait = now - ready
            # HotspotAggregator.note_wait, inlined (once per hop).
            link = wire.link
            link.dequeues += 1
            link.wait_cycles += wait
            sketch = link.wait_sketch
            sketch.count += 1
            counts = sketch.counts
            counts[wait] = counts.get(wait, 0) + 1
            if wait:
                # Split the wait by intersecting [ready, now) with the
                # wire's busy segments, walking a cursor so overlapping
                # multi-channel segments never double-charge; the
                # uncovered remainder is flow-control hold.
                covered_same = 0
                covered_cross = 0
                if segs:
                    # Segments recorded before the join index can still
                    # overlap the window only if they were mid-flight at
                    # join time — at most one per physical channel.
                    lo = st[_ST_SEG] - wire.base - len(port.free_at)
                    if lo < 0:
                        lo = 0
                    cursor = ready
                    my_cls = st[_ST_CLS]
                    note_blocking = self.hotspots.note_blocking
                    for start, end, seg_cls in segs[lo:]:
                        if start >= now:
                            break
                        if end <= cursor:
                            continue
                        a = start if start > cursor else cursor
                        b = end if end < now else now
                        overlap = b - a
                        if overlap > 0:
                            if qos and seg_cls != my_cls:
                                covered_cross += overlap
                            else:
                                covered_same += overlap
                            note_blocking(my_cls, seg_cls, overlap)
                            cursor = b
                            if cursor >= now:
                                break
                st[_ST_COMP + _QUEUEING] += covered_same
                st[_ST_COMP + _ARBITRATION] += covered_cross
                st[_ST_COMP + _CREDIT_STALL] += (
                    wait - covered_same - covered_cross)
            st[_ST_COMP + _SERIALIZATION] += tail - now
            st[_ST_LAST] = tail
            st[_ST_FLY] = True
        # The packet's own segment lands after the split (its start is
        # ``now``, outside the wait window) — recorded even for
        # pre-install packets so later waits intersect correctly.
        segs.append((now, tail, packet.tclass))
        if len(segs) > self.segment_limit:
            drop = len(segs) // 2
            del segs[:drop]
            wire.base += drop

    def deliver(self, packet, now: int) -> list[int] | None:
        """Finalize one delivery; returns the component vector (or None
        for a pre-install packet)."""
        st = packet.obs_state
        if st is None:
            self.preinstall_skips += 1
            return None
        packet.obs_state = None
        delta = now - st[_ST_LAST]
        if delta:
            comp = _WIRE if st[_ST_FLY] else _REQUEUE
            st[_ST_COMP + comp] += delta
        comps = st[_ST_COMP:]
        total = sum(comps)
        latency = now - packet.inject_time
        if total != latency:
            self.conservation_violations += 1
            if len(self.violation_examples) < 8:
                self.violation_examples.append({
                    "pid": packet.pid,
                    "latency": latency,
                    "component_sum": total,
                    "components": dict(zip(COMPONENTS, comps)),
                })
        self.delivered += 1
        cls = st[_ST_CLS]
        totals = self.class_totals.get(cls)
        if totals is None:
            totals = [0, 0] + [0] * _NCOMP
            self.class_totals[cls] = totals
        totals[0] += 1
        totals[1] += latency
        for i in range(_NCOMP):
            totals[2 + i] += comps[i]
        context = packet.context
        if (
            isinstance(context, tuple) and len(context) == 2
            and context[0] == "svc"
        ):
            self._fold_svc(context[1], comps)
        return comps

    def drop(self, packet, now: int) -> None:
        if packet.obs_state is not None:
            packet.obs_state = None
            self.dropped += 1

    # -- service-request index ---------------------------------------------

    def _fold_svc(self, seq, comps: list[int]) -> None:
        entry = self._svc.get(seq)
        if entry is None:
            self._svc[seq] = list(comps)
            order = self._svc_order
            order.append(seq)
            if len(order) > self._svc_limit:
                self._svc.pop(order.popleft(), None)
        else:
            for i in range(_NCOMP):
                entry[i] += comps[i]

    def take_request(self, seq) -> dict[str, int] | None:
        """Pop the summed network components of service request *seq*
        (None when its packets predate the install or never existed)."""
        comps = self._svc.pop(seq, None)
        if comps is None:
            return None
        return dict(zip(COMPONENTS, comps))

    # -- reports -----------------------------------------------------------

    def class_label(self, cls: int) -> str:
        return self.class_names.get(cls, f"cls{cls}")

    def component_totals(self) -> dict[str, int]:
        """Fleet-wide cycles per component, all classes summed."""
        out = dict.fromkeys(COMPONENTS, 0)
        for totals in self.class_totals.values():
            for i, name in enumerate(COMPONENTS):
                out[name] += totals[2 + i]
        return out

    def class_breakdown(self) -> dict[str, dict[str, Any]]:
        """Per-class delivered count, mean latency, and component stack."""
        out: dict[str, dict[str, Any]] = {}
        for cls, totals in sorted(self.class_totals.items()):
            delivered, latency_sum = totals[0], totals[1]
            out[self.class_label(cls)] = {
                "class_id": cls,
                "delivered": delivered,
                "latency_cycles": latency_sum,
                "latency_mean": (
                    latency_sum / delivered if delivered else 0.0
                ),
                "components": {
                    name: totals[2 + i]
                    for i, name in enumerate(COMPONENTS)
                },
            }
        return out

    def conserved(self) -> bool:
        """True when every delivered packet's components summed exactly."""
        return self.conservation_violations == 0

    def summary(self, top_k: int = 8) -> dict[str, Any]:
        """JSON-safe roll-up (the ``anatomy.json`` artifact body)."""
        return {
            "components": COMPONENTS,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "retransmit_resets": self.retransmit_resets,
            "preinstall_skips": self.preinstall_skips,
            "conserved": self.conserved(),
            "conservation_violations": self.conservation_violations,
            "violation_examples": list(self.violation_examples),
            "component_totals": self.component_totals(),
            "per_class": self.class_breakdown(),
            "hotspots": self.hotspots.summary(
                top_k=top_k, class_names=self.class_names
            ),
        }

    def payload(self, top_k: int = 3) -> dict[str, Any]:
        """Flat ``obs_``-style fields for sweep-report rows."""
        totals = self.component_totals()
        grand = sum(totals.values())
        out: dict[str, Any] = {
            "obs_anatomy_delivered": self.delivered,
            "obs_anatomy_conserved": self.conserved(),
        }
        for name in COMPONENTS:
            out[f"obs_{name}_frac"] = (
                round(totals[name] / grand, 4) if grand else 0.0
            )
        for rank, entry in enumerate(self.hotspots.top_links(top_k)):
            out[f"obs_hot_link_{rank}"] = (
                f"{entry.u}->{entry.v}:{entry.wait_cycles}"
            )
        for i, row in sorted(self.hotspots.matrix.items()):
            blocked = self.class_label(i)
            for j, cycles in sorted(row.items()):
                out[f"obs_wait_{blocked}_behind_{self.class_label(j)}"] = (
                    cycles
                )
        return out

    # -- metrics registry ---------------------------------------------------

    def register_metrics(self, registry, top_k: int = 16) -> None:
        """Register labeled pull-series on a MetricsRegistry."""

        def collect(emit, self=self, top_k=top_k):
            for cls, totals in sorted(self.class_totals.items()):
                label = self.class_label(cls)
                for i, name in enumerate(COMPONENTS):
                    emit(
                        "anatomy_component_cycles_total", "counter",
                        totals[2 + i],
                        labels={"component": name, "tclass": label},
                    )
            emit(
                "anatomy_delivered_total", "counter", self.delivered,
            )
            emit(
                "anatomy_conservation_violations_total", "counter",
                self.conservation_violations,
            )
            for entry in self.hotspots.top_links(top_k):
                emit(
                    "anatomy_link_wait_cycles_total", "counter",
                    entry.wait_cycles,
                    labels={"link": f"{entry.u}->{entry.v}"},
                )
            for i, row in sorted(self.hotspots.matrix.items()):
                for j, cycles in sorted(row.items()):
                    emit(
                        "anatomy_interference_cycles_total", "counter",
                        cycles,
                        labels={
                            "blocked": self.class_label(i),
                            "behind": self.class_label(j),
                        },
                    )

        registry.collector(collect)
