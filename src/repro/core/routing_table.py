"""Per-router routing tables (paper §IV-B, Figure 6b).

Each router keeps a small table describing only its one- and two-hop
neighborhood — this is what makes String Figure's routing state
*constant* in the network size, unlike k-shortest-path schemes whose
tables grow superlinearly.  A hardware entry stores:

* the neighbor's memory-node number (``log2 N`` bits),
* a 1-bit *blocking* flag (set during atomic reconfiguration),
* a 1-bit *valid* flag (cleared when the neighbor is gated off),
* a 1-bit hop count (0 = one-hop, 1 = two-hop),
* the virtual-space id (``ceil(log2 p/2)`` bits) and a 7-bit coordinate
  per space.

The table is bounded by ``p(p+1)`` entries for ``p``-port routers: at
most ``p`` one-hop neighbors, each contributing at most ``p`` of its own
one-hop neighbors.

This module models the table at entry granularity (a software entry
carries the full coordinate vector) and provides bit-accurate size
accounting so the storage-overhead claims can be checked in tests and
benches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["TableEntry", "RoutingTable", "entry_bits", "table_bits"]


@dataclass
class TableEntry:
    """One neighbor record in a router's table.

    ``vias`` lists the one-hop neighbors through which a two-hop entry
    is reachable (multiple vias = path diversity); for a one-hop entry
    it contains the neighbor itself.
    """

    node: int
    hop: int
    coords: tuple[float, ...]
    vias: set[int] = field(default_factory=set)
    valid: bool = True
    blocked: bool = False

    @property
    def usable(self) -> bool:
        """Entries take part in forwarding only when valid and unblocked."""
        return self.valid and not self.blocked


class RoutingTable:
    """The one- and two-hop neighbor table of a single router."""

    def __init__(self, owner: int, num_ports: int) -> None:
        self.owner = owner
        self.num_ports = num_ports
        self._entries: dict[int, TableEntry] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, topology, owner: int) -> "RoutingTable":
        """Populate a table from a topology's current active neighborhood."""
        table = cls(owner, topology.num_ports)
        one_hop = [v for v in topology.neighbors(owner) if topology.is_active(v)]
        for w in one_hop:
            table._entries[w] = TableEntry(
                node=w, hop=1, coords=topology.coords.vector(w), vias={w}
            )
        for w in one_hop:
            for x in topology.neighbors(w):
                if x == owner or not topology.is_active(x):
                    continue
                existing = table._entries.get(x)
                if existing is None:
                    table._entries[x] = TableEntry(
                        node=x, hop=2, coords=topology.coords.vector(x), vias={w}
                    )
                elif existing.hop == 2:
                    existing.vias.add(w)
        return table

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, node: int) -> bool:
        return node in self._entries

    def lookup(self, node: int) -> TableEntry | None:
        """Entry for *node*, or None."""
        return self._entries.get(node)

    def entries(self) -> list[TableEntry]:
        """All entries in deterministic (node-id) order."""
        return [self._entries[k] for k in sorted(self._entries)]

    def one_hop(self, usable_only: bool = True) -> list[TableEntry]:
        """One-hop entries (the forwarding candidates)."""
        return [
            e
            for e in self.entries()
            if e.hop == 1 and (e.usable or not usable_only)
        ]

    def two_hop(self, usable_only: bool = True) -> list[TableEntry]:
        """Two-hop entries (the look-ahead information)."""
        return [
            e
            for e in self.entries()
            if e.hop == 2 and (e.usable or not usable_only)
        ]

    @property
    def max_entries(self) -> int:
        """The paper's p(p+1) capacity bound."""
        return self.num_ports * (self.num_ports + 1)

    def check_capacity(self) -> None:
        """Assert the table fits the hardware bound."""
        assert len(self) <= self.max_entries, (
            f"router {self.owner}: {len(self)} entries exceed "
            f"p(p+1) = {self.max_entries}"
        )

    # -- reconfiguration primitives (paper §III-C) -----------------------------

    def block(self, node: int) -> None:
        """Set the blocking bit on the entry for *node* (step 1/4)."""
        entry = self._entries.get(node)
        if entry is not None:
            entry.blocked = True

    def unblock(self, node: int) -> None:
        """Clear the blocking bit on the entry for *node* (step 4/4)."""
        entry = self._entries.get(node)
        if entry is not None:
            entry.blocked = False

    def block_all(self) -> None:
        """Block every entry (coarse atomic-reconfiguration window)."""
        for entry in self._entries.values():
            entry.blocked = True

    def unblock_all(self) -> None:
        """Unblock every entry."""
        for entry in self._entries.values():
            entry.blocked = False

    def invalidate(self, node: int) -> None:
        """Clear the valid bit on the entry for *node* (step 3/4)."""
        entry = self._entries.get(node)
        if entry is not None:
            entry.valid = False

    def validate(self, node: int) -> None:
        """Set the valid bit on the entry for *node* (step 3/4, reverse)."""
        entry = self._entries.get(node)
        if entry is not None:
            entry.valid = True

    def set_hop(self, node: int, hop: int, vias: set[int] | None = None) -> None:
        """Flip an entry's hop bit (2-hop neighbor promoted to 1-hop etc.)."""
        entry = self._entries.get(node)
        if entry is None:
            raise KeyError(f"router {self.owner} has no entry for node {node}")
        entry.hop = hop
        if vias is not None:
            entry.vias = set(vias)

    def drop_via(self, node: int, via: int) -> None:
        """Remove a via from a 2-hop entry; invalidate if none remain."""
        entry = self._entries.get(node)
        if entry is None:
            return
        entry.vias.discard(via)
        if not entry.vias:
            entry.valid = False


def entry_bits(num_nodes: int, num_ports: int, coord_bits: int = 7) -> int:
    """Hardware bits of one table entry (paper §IV-B accounting).

    node id + blocking + valid + hop + (space id + coordinate) per the
    entry's space field.  The paper stores one space/coordinate pair per
    entry row; we follow that accounting.
    """
    node_bits = max(1, math.ceil(math.log2(num_nodes)))
    spaces = max(1, num_ports // 2)
    space_bits = max(1, math.ceil(math.log2(spaces)))
    return node_bits + 1 + 1 + 1 + space_bits + coord_bits


def table_bits(num_nodes: int, num_ports: int, coord_bits: int = 7) -> int:
    """Worst-case hardware bits of one router's full table.

    ``p(p+1)`` entries, each carrying one (space, coordinate) row per
    virtual space.
    """
    spaces = max(1, num_ports // 2)
    rows = num_ports * (num_ports + 1) * spaces
    return rows * entry_bits(num_nodes, num_ports, coord_bits)
