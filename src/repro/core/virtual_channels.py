"""Two-virtual-channel deadlock avoidance (paper §IV-A).

String Figure's greedy routing guarantees loop-free *paths*; cyclic
*buffer* dependencies are broken with two virtual channels:

* VC0 carries packets whose source space coordinate is lower than the
  destination's;
* VC1 carries packets routed from a higher coordinate to a lower one.

Within one VC, packets only traverse strictly increasing (respectively
decreasing) coordinates, so buffer wait-for graphs cannot close a
cycle; the only remaining dependency is between the two VCs inside a
router, which is insufficient to deadlock (Dally's argument, refs
[36-38] of the paper).
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = [
    "NUM_VIRTUAL_CHANNELS",
    "select_virtual_channel",
    "partition_credits",
]

#: The design uses exactly two virtual channels.
NUM_VIRTUAL_CHANNELS = 2


def select_virtual_channel(src_coord: float, dst_coord: float) -> int:
    """VC for a packet, from the space-0 coordinates of its endpoints.

    Packets from a lower space coordinate toward a higher one ride VC0;
    the opposite direction rides VC1.  Equal coordinates (possible only
    under quantization) default to VC0 — both endpoints occupy the same
    ring point, so the packet cannot contribute to an increasing *and*
    a decreasing chain at once.
    """
    return 0 if src_coord <= dst_coord else 1


def partition_credits(
    total: int, shares: Sequence[float]
) -> tuple[list[int], int]:
    """Split one VC's credit pool into per-class reservations + shared.

    Each traffic class reserves ``floor(total * share)`` credits; the
    remainder forms the shared pool every class may borrow from
    (work-conserving borrowing — see ``docs/QOS.md``).  Deadlock
    guard: a class with no reservation can only ever send on borrowed
    credits, so if flooring would leave such a class facing an empty
    shared pool, one credit is taken back from the largest reservation
    to keep the shared pool non-empty.  Conservation always holds:
    ``sum(reserved) + shared == total``.
    """
    if total < 0:
        raise ValueError(f"total credits must be >= 0, got {total}")
    reserved = [int(total * share) for share in shares]
    shared = total - sum(reserved)
    if shared < 0:
        raise ValueError(
            f"credit shares {list(shares)} over-subscribe {total} credits"
        )
    if shared == 0 and total > 0 and any(r == 0 for r in reserved):
        richest = max(range(len(reserved)), key=lambda i: reserved[i])
        reserved[richest] -= 1
        shared = 1
    return reserved, shared
