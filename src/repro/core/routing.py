"""Greediest and adaptive greediest routing (paper §III-B).

Forwarding a packet from node ``s`` toward destination ``t``:

1. Compute the minimum circular distance ``MD`` to ``t`` of every
   usable node in the router's *table window* — its one-hop and two-hop
   neighbors (a fixed, small number of numeric comparisons; no global
   state, no link-state broadcast).
2. The candidate *targets* are window nodes with ``MD`` strictly below
   the current node's own (the paper's strict-progress requirement,
   extended to the two-hop window per its "we compute MD with both one-
   and two-hop neighbor information" design point).
3. *Greediest* selection forwards toward the window target with the
   smallest ``MD``.  When that target is a two-hop neighbor whose via
   does not itself make progress, the packet carries a one-entry
   *commit* so the intermediate router forwards it on; the sequence of
   decision points therefore has strictly decreasing ``MD``, which
   keeps routes loop-free (paper Appendix A, Proposition 3).
4. *Adaptive* selection (first hop only, following the paper) diverts
   to a lightly-loaded output port among the progressing vias when the
   greediest port's queue is filled beyond a threshold.

If no window target makes progress — possible only on a degraded
(reconfigured or quantized) topology — a space-0 ring fallback walks
clockwise.  Like GPSR's perimeter mode, the packet records the ``MD``
at fallback entry and keeps walking (strictly reducing the clockwise
space-0 distance each step, hence terminating) until it reaches a node
whose ``MD`` is below the recorded value, where greedy mode resumes.
Every fallback phase ends at a strictly smaller ``MD`` than the
previous one, so the combined protocol still delivers in finitely many
hops as long as the active space-0 ring is intact — which the
reconfiguration manager's shortcut patching rule guarantees.  Fallback
hops are counted so experiments can report them (zero on intact
networks).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.core.coordinates import clockwise_distance
from repro.core.routing_table import RoutingTable
from repro.core.topology import LinkDirection, StringFigureTopology
from repro.core.virtual_channels import select_virtual_channel

__all__ = [
    "GreediestRouting",
    "AdaptiveGreediestRouting",
    "RouteResult",
    "RouteState",
]


class RouteState:
    """Per-packet routing state carried in the packet header.

    ``commit`` is the node id the packet must be forwarded to next (set
    when a two-hop window target was chosen through a non-progressing
    via); ``fallback_md`` is the ``MD`` recorded when the space-0 ring
    fallback was entered, or ``None`` in greedy mode.  Hardware cost:
    one node id plus one 7-bit distance — a few bytes in the header.
    """

    __slots__ = ("commit", "fallback_md")

    def __init__(
        self, commit: int | None = None, fallback_md: float | None = None
    ) -> None:
        self.commit = commit
        self.fallback_md = fallback_md

    @property
    def in_fallback(self) -> bool:
        return self.fallback_md is not None

    def __repr__(self) -> str:
        return f"RouteState(commit={self.commit}, fallback_md={self.fallback_md})"


class RouteResult:
    """A computed route with bookkeeping for experiments."""

    __slots__ = ("path", "fallback_hops")

    def __init__(self, path: list[int], fallback_hops: int) -> None:
        self.path = path
        self.fallback_hops = fallback_hops

    @property
    def hops(self) -> int:
        return len(self.path) - 1

    def __repr__(self) -> str:
        return f"RouteResult(hops={self.hops}, fallback={self.fallback_hops})"


class _NodeView:
    """Vectorized snapshot of one router's usable table window.

    All per-decision distance math runs over ``all_coords`` — one
    contiguous ``(1 + window, width)`` matrix whose row 0 is the owning
    router and whose next ``k`` rows are its one-hop neighbors (the
    window lists one-hop entries first) — so a forwarding decision
    costs a single vectorized MD kernel instead of three separate
    array builds.  ``via_idx``/``inf_mask`` are the per-target via
    lists and the masked-min penalty matrix, precomputed once per
    (re)build rather than per packet.
    """

    __slots__ = (
        "k",
        "nbr_ids",
        "nbr_coords",
        "win_ids",
        "win_coords",
        "win_hop",
        "via_mask",
        "via_idx",
        "inf_mask",
        "all_coords",
        "scratch",
        "scratch2",
        "md_out",
        "id_to_nbr_index",
        "id_to_win_index",
    )

    def __init__(self, table: RoutingTable, owner_coords) -> None:
        one_hop = table.one_hop()
        usable_vias = {e.node for e in one_hop}
        # A two-hop entry is only a window target while at least one of
        # its vias is usable; with every via blocked (mid-
        # reconfiguration) the entry must drop out of the window, or
        # greedy selection could pick a target it cannot reach.
        window = one_hop + [
            e for e in table.two_hop() if e.vias & usable_vias
        ]
        # Width is pinned explicitly: a router may transiently have an
        # *empty* usable window (every neighbor blocked mid-
        # reconfiguration), and reshape(0, -1) is not defined.
        width = len(one_hop[0].coords) if one_hop else 1
        self.k = len(one_hop)
        self.nbr_ids = np.array([e.node for e in one_hop], dtype=np.int64)
        self.nbr_coords = np.array(
            [e.coords for e in one_hop], dtype=np.float64
        ).reshape(len(one_hop), width)
        self.win_ids = np.array([e.node for e in window], dtype=np.int64)
        self.win_coords = np.array(
            [e.coords for e in window], dtype=np.float64
        ).reshape(len(window), width)
        self.win_hop = np.array([e.hop for e in window], dtype=np.int64)
        # via_mask[i, j] is True when window node j is reachable through
        # one-hop neighbor i.
        k, m = len(one_hop), len(window)
        mask = np.zeros((k, m), dtype=bool)
        nbr_index = {e.node: i for i, e in enumerate(one_hop)}
        for j, entry in enumerate(window):
            for via in entry.vias:
                i = nbr_index.get(via)
                if i is not None:
                    mask[i, j] = True
        self.via_mask = mask
        self.via_idx = [np.flatnonzero(mask[:, j]) for j in range(m)]
        # Adding this to a broadcast win_md row reproduces
        # np.where(mask, win_md, inf) without building the where() per
        # decision (x + 0.0 == x exactly; x + inf == inf).
        self.inf_mask = np.where(mask, 0.0, np.inf)
        owner_row = np.asarray(owner_coords, dtype=np.float64).reshape(1, -1)
        if owner_row.shape[1] != width:
            owner_row = np.zeros((1, width), dtype=np.float64)
        self.all_coords = np.ascontiguousarray(
            np.concatenate([owner_row, self.win_coords], axis=0)
        )
        # Per-decision scratch space for the fused MD kernel: the
        # result buffer is valid only until the next call on this view,
        # which every caller satisfies (consume-before-recompute).
        self.scratch = np.empty_like(self.all_coords)
        self.scratch2 = np.empty_like(self.all_coords)
        self.md_out = np.empty(self.all_coords.shape[0], dtype=np.float64)
        self.id_to_nbr_index = nbr_index
        self.id_to_win_index = {int(n): j for j, n in enumerate(self.win_ids)}


class GreediestRouting:
    """Greediest routing over a String Figure (or S2) topology.

    Parameters
    ----------
    topology:
        A :class:`~repro.core.topology.StringFigureTopology`.
    use_two_hop:
        Use the two-hop window from the routing table (the paper's
        default per its sensitivity study); with ``False`` only one-hop
        ``MD`` drives decisions.
    """

    num_vcs = 2

    #: Per-router decision tables materialize only below this node
    #: count: the shared pairwise MD matrix is O(N^2) floats (a 10k-node
    #: network would need ~800 MB), and a cold sweep touches too few
    #: (router, dst) pairs per router to amortize an (m, N) kernel pass
    #: at that scale.  Above the gate every lookup takes the scalar
    #: path, which stays bit-identical by construction.
    kernel_max_nodes = 4096

    def __init__(
        self,
        topology: StringFigureTopology,
        use_two_hop: bool = True,
    ) -> None:
        self.topology = topology
        self.use_two_hop = use_two_hop
        self._uni = topology.direction is LinkDirection.UNI
        self.tables: dict[int, RoutingTable] = {}
        self._views: dict[int, _NodeView] = {}
        #: Bumped on every table/view (re)build so decision caches keyed
        #: on the old tables (e.g. GreedyPolicy's) auto-invalidate —
        #: offline reconfiguration never tells policies about itself.
        self.version = 0
        self._coord_matrix = np.array(
            [topology.coords.vector(v) for v in range(topology.num_nodes)],
            dtype=np.float64,
        )
        #: Pairwise MD matrix shared by every router's decision table;
        #: a pure function of node coordinates, so it survives table
        #: rebuilds (reconfiguration flips table bits, never coords).
        self._md_matrix: np.ndarray | None = None
        #: node -> (next, commit, valid) lists, or False when the
        #: kernel is disabled for that router (empty window / size
        #: gate).  Dropped whenever ``version`` moves.
        self._kernel_tables: dict[int, tuple | bool] = {}
        self._kernel_version = -1
        self.rebuild()

    # -- table management -----------------------------------------------------

    def rebuild(self, nodes: Sequence[int] | None = None) -> None:
        """(Re)build routing tables for *nodes* (default: every active node)."""
        self.version += 1
        targets = self.topology.active_nodes if nodes is None else nodes
        for v in targets:
            if self.topology.is_active(v):
                self.tables[v] = RoutingTable.build(self.topology, v)
                self._views[v] = _NodeView(self.tables[v], self._coord_matrix[v])
            else:
                self.tables.pop(v, None)
                self._views.pop(v, None)

    def refresh_views(self, nodes: Sequence[int] | None = None) -> None:
        """Re-snapshot vectorized views after manual table bit flips."""
        self.version += 1
        targets = self.tables.keys() if nodes is None else nodes
        for v in list(targets):
            if v in self.tables:
                self._views[v] = _NodeView(self.tables[v], self._coord_matrix[v])

    def table(self, node: int) -> RoutingTable:
        """Routing table of *node*."""
        return self.tables[node]

    # -- distance helpers --------------------------------------------------------

    def _md_array(self, coords: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Vectorized MD from each row of *coords* to *dst*."""
        if self._uni:
            d = (dst - coords) % 1.0
        else:
            d = np.abs(coords - dst)
            d = np.minimum(d, 1.0 - d)
        if d.ndim == 1:
            return d.min()
        return d.min(axis=1)

    def md(self, a: int, b: int) -> float:
        """MD between two nodes using this topology's distance convention."""
        return float(self._md_array(self._coord_matrix[a], self._coord_matrix[b]))

    def md_to_coords(self, node: int, dst_coords: Sequence[float]) -> float:
        """MD from *node* to a destination coordinate vector."""
        return float(
            self._md_array(
                self._coord_matrix[node], np.asarray(dst_coords, dtype=np.float64)
            )
        )

    def dst_vector(self, dst: int) -> np.ndarray:
        """Destination coordinate vector (written into packet headers)."""
        return self._coord_matrix[dst]

    def _window_md(self, view: _NodeView, dst_vec: np.ndarray) -> np.ndarray:
        """MD to *dst_vec* of ``[owner, *window]`` in one vectorized pass.

        Row 0 is the owning router's own MD; rows ``1..k`` are the
        one-hop neighbors (the window lists them first); the rest are
        two-hop targets.  Identical floating-point operations (and thus
        bit-identical results) to per-array :meth:`_md_array` calls —
        the fusion only removes per-call dispatch overhead, which is
        what the simulator fast path leans on.
        """
        coords = view.all_coords
        d = view.scratch
        if self._uni:
            np.subtract(dst_vec, coords, out=d)
            np.mod(d, 1.0, out=d)
        else:
            np.subtract(coords, dst_vec, out=d)
            np.abs(d, out=d)
            wrap = np.subtract(1.0, d, out=view.scratch2)
            np.minimum(d, wrap, out=d)
        return d.min(axis=1, out=view.md_out)

    # -- per-router decision-table kernels -------------------------------------

    def _full_md_matrix(self) -> np.ndarray:
        """``M[a, b]`` = MD from node *a* to node *b*, built once.

        Elementwise operations match :meth:`_md_array` exactly
        (subtract, mod / abs + wrap-minimum, min over spaces), so every
        entry is bit-identical to the scalar per-pair computation.
        """
        m = self._md_matrix
        if m is None:
            coords = self._coord_matrix
            if self._uni:
                d = (coords[None, :, :] - coords[:, None, :]) % 1.0
            else:
                d = np.abs(coords[:, None, :] - coords[None, :, :])
                np.minimum(d, 1.0 - d, out=d)
            m = np.ascontiguousarray(d.min(axis=2))
            self._md_matrix = m
        return m

    def _build_decision_table(self, current: int) -> tuple | bool:
        """All-destination greedy decisions of one router, vectorized.

        Returns ``(next, commit, valid)`` plain lists indexed by
        destination id (``commit`` uses ``-1`` for "no commit"), or
        ``False`` when the kernel does not apply to this router.  A
        destination with ``valid[dst] == False`` (no strict-progress
        window target: the fallback ring walk) must take the scalar
        path.  Tie-breaking matches :meth:`_greedy_choice` operation
        for operation: first-minimum ``argmin`` over the same window
        row order, and the ``+ inf_mask`` masked via argmin over the
        same ascending neighbor order.
        """
        view = self._views.get(current)
        if view is None or view.k == 0:
            return False
        n = self.topology.num_nodes
        if n > self.kernel_max_nodes:
            return False
        md = self._full_md_matrix()
        my_md = md[current]
        nbr_md = md[view.nbr_ids]
        every = np.arange(n)
        if self.use_two_hop:
            win_md = md[view.win_ids]
            target = win_md.argmin(axis=0)
            valid = win_md[target, every] < my_md
            via = (nbr_md + view.inf_mask[:, target]).argmin(axis=0)
            nxt = view.nbr_ids[via]
            commit = np.where(
                (view.win_hop[target] == 2) & (nbr_md[via, every] >= my_md),
                view.win_ids[target],
                -1,
            )
        else:
            best = nbr_md.argmin(axis=0)
            valid = nbr_md[best, every] < my_md
            nxt = view.nbr_ids[best]
            commit = np.full(n, -1, dtype=np.int64)
        # Direct delivery always wins, before any window comparison.
        for b in view.nbr_ids:
            nxt[b] = b
            commit[b] = -1
            valid[b] = True
        valid[current] = False
        return (nxt.tolist(), commit.tolist(), valid.tolist())

    def kernel_next_hop(
        self, current: int, dst: int
    ) -> tuple[int, int | None] | None:
        """Plain-greedy ``(next, commit)`` from the router's decision
        table, or ``None`` when the scalar path must run (kernel gated
        off, or *dst* needs the fallback walk).

        Tables are dropped whenever ``version`` moves, so reconfig and
        fault-repair rebuilds invalidate them exactly like the policy
        decision caches.
        """
        if self._kernel_version != self.version:
            self._kernel_tables.clear()
            self._kernel_version = self.version
        table = self._kernel_tables.get(current)
        if table is None:
            table = self._build_decision_table(current)
            self._kernel_tables[current] = table
        if table is False:
            return None
        nxt, commit, valid = table
        if not valid[dst]:
            return None
        c = commit[dst]
        return nxt[dst], (c if c >= 0 else None)

    # -- forwarding ----------------------------------------------------------------

    def is_direct(self, current: int, dst: int) -> bool:
        """Whether *dst* is a usable one-hop neighbor of *current*."""
        return dst in self._views[current].id_to_nbr_index

    def usable_neighbors(self, current: int):
        """The usable one-hop neighbor ids of *current* (iterable)."""
        return self._views[current].id_to_nbr_index.keys()

    def candidate_set(
        self, current: int, dst: int, dst_coords: Sequence[float] | None = None
    ) -> list[tuple[float, int]]:
        """Progressing vias with look-ahead scores, best-first.

        Returns ``(score, via)`` pairs where *score* is the best window
        ``MD`` reachable through the via within two hops; only vias
        whose score strictly improves on the current node's ``MD`` are
        included (the paper's set ``W`` used for adaptive routing).
        """
        view = self._views[current]
        k = view.k
        if k == 0:
            return []
        dst_vec = (
            self._coord_matrix[dst]
            if dst_coords is None
            else np.asarray(dst_coords, dtype=np.float64)
        )
        md = self._window_md(view, dst_vec)
        my_md = md[0]
        nbr_md = md[1 : k + 1]
        if self.use_two_hop:
            # win_md + inf_mask == np.where(via_mask, win_md, inf),
            # with the mask matrix hoisted out of the packet path.
            scores = np.minimum(nbr_md, (md[1:] + view.inf_mask).min(axis=1))
        else:
            scores = nbr_md
        result = [
            (float(scores[i]), int(view.nbr_ids[i]))
            for i in np.flatnonzero(scores < my_md)
        ]
        result.sort(key=lambda item: (item[0], item[1]))
        return result

    def _greedy_choice(
        self, current: int, dst_vec: np.ndarray
    ) -> tuple[int, int | None] | None:
        """Greediest (via, commit) from *current*, or None if stuck.

        The commit is set when the best window target is a two-hop
        neighbor whose via does not itself make strict progress.
        """
        view = self._views[current]
        k = view.k
        if k == 0:
            return None
        md = self._window_md(view, dst_vec)
        my_md = md[0]
        nbr_md = md[1 : k + 1]
        if not self.use_two_hop:
            best = int(nbr_md.argmin())
            if nbr_md[best] >= my_md:
                return None
            return int(view.nbr_ids[best]), None
        win_md = md[1:]
        target = int(win_md.argmin())
        if win_md[target] >= my_md:
            return None
        vias = view.via_idx[target]
        via = int(vias[nbr_md[vias].argmin()])
        via_id = int(view.nbr_ids[via])
        if view.win_hop[target] == 1:
            return via_id, None
        commit = int(view.win_ids[target]) if nbr_md[via] >= my_md else None
        return via_id, commit

    def next_hop(
        self,
        current: int,
        dst: int,
        dst_coords: Sequence[float] | None = None,
        state: RouteState | None = None,
    ) -> tuple[int, RouteState]:
        """Forward one packet one hop; returns ``(neighbor, new_state)``.

        *state* is the packet's :class:`RouteState` (``None`` = fresh
        packet).  The returned state must travel with the packet.
        """
        if state is None:
            state = RouteState()
        view = self._views[current]
        dst_vec = (
            self._coord_matrix[dst]
            if dst_coords is None
            else np.asarray(dst_coords, dtype=np.float64)
        )
        # Direct delivery always wins.
        if dst in view.id_to_nbr_index:
            return dst, RouteState()
        # Honor a pending two-hop commit if it is still a usable neighbor.
        if state.commit is not None:
            commit = state.commit
            if commit in view.id_to_nbr_index:
                return commit, RouteState(fallback_md=state.fallback_md)
            state = RouteState(fallback_md=state.fallback_md)
        # Leave fallback mode once MD has improved past the entry value.
        if state.fallback_md is not None:
            my_md = float(self._md_array(self._coord_matrix[current], dst_vec))
            if my_md < state.fallback_md:
                state = RouteState()
        if state.fallback_md is None:
            choice = self._greedy_choice(current, dst_vec)
            if choice is not None:
                via, commit = choice
                return via, RouteState(commit=commit)
            entry_md = float(self._md_array(self._coord_matrix[current], dst_vec))
            state = RouteState(fallback_md=entry_md)
        return self._fallback_hop(current, dst_vec), state

    def _fallback_hop(self, current: int, dst_vec: np.ndarray) -> int:
        """One clockwise step of the space-0 ring walk.

        Picks the usable neighbor with the smallest clockwise space-0
        distance to the destination.  The clockwise ring successor is
        always such a neighbor on an intact active ring, so the chosen
        distance strictly decreases; a non-decreasing choice means the
        ring is broken and delivery cannot be guaranteed.
        """
        view = self._views[current]
        if view.nbr_ids.size == 0:
            raise RuntimeError(f"node {current} has no usable neighbors")
        target = float(dst_vec[0])
        d = (target - view.nbr_coords[:, 0]) % 1.0
        best = int(np.argmin(d))
        my_dcw = clockwise_distance(
            float(self._coord_matrix[current][0]), target
        )
        if float(d[best]) >= my_dcw:
            raise RuntimeError(
                f"space-0 ring broken at node {current}: no clockwise progress "
                "(reconfiguration left the network unpatchable)"
            )
        return int(view.nbr_ids[best])

    def route(self, src: int, dst: int, max_hops: int | None = None) -> RouteResult:
        """Compute the full greediest route from *src* to *dst*."""
        if not self.topology.is_active(src) or not self.topology.is_active(dst):
            raise ValueError("source and destination must be active nodes")
        if max_hops is None:
            max_hops = 4 * self.topology.num_nodes
        path = [src]
        fallbacks = 0
        current = src
        dst_vec = self._coord_matrix[dst]
        state = RouteState()
        while current != dst:
            if len(path) - 1 >= max_hops:
                raise RuntimeError(
                    f"route {src}->{dst} exceeded {max_hops} hops: {path[:16]}..."
                )
            nxt, state = self.next_hop(current, dst, dst_vec, state)
            fallbacks += int(state.in_fallback)
            path.append(nxt)
            current = nxt
        return RouteResult(path, fallbacks)

    # -- simulator-facing policy interface ----------------------------------------

    def forwarding_candidates(self, current: int, dst: int) -> tuple[int, ...]:
        """Greedy candidate vias in preference order (no fallback)."""
        ranked = self.candidate_set(current, dst)
        return tuple(w for _score, w in ranked)

    def select_vc(self, src: int, dst: int) -> int:
        """Deadlock-avoidance virtual channel for a ``src -> dst`` packet."""
        coords = self.topology.coords
        return select_virtual_channel(
            coords.coordinate(src, 0), coords.coordinate(dst, 0)
        )


class AdaptiveGreediestRouting(GreediestRouting):
    """Greediest routing with the paper's adaptive first-hop selection.

    At the *source* router only, when the greediest output port's queue
    is filled beyond ``congestion_threshold`` (fraction of queue
    capacity, paper example: 50%), the packet is diverted to the least
    loaded port that still satisfies the strict-progress requirement.
    Later hops always take the greediest choice, preserving loop
    freedom.
    """

    def __init__(
        self,
        topology: StringFigureTopology,
        use_two_hop: bool = True,
        congestion_threshold: float = 0.5,
    ) -> None:
        if not 0.0 < congestion_threshold <= 1.0:
            raise ValueError(
                f"congestion_threshold must be in (0, 1], got {congestion_threshold}"
            )
        super().__init__(topology, use_two_hop=use_two_hop)
        self.congestion_threshold = congestion_threshold

    def adaptive_next_hop(
        self,
        current: int,
        dst: int,
        port_load: Callable[[int, int], float],
        first_hop: bool,
        dst_coords: Sequence[float] | None = None,
        state: RouteState | None = None,
    ) -> tuple[int, RouteState]:
        """Next hop given a ``port_load(node, neighbor) -> [0, 1]`` probe.

        ``port_load`` reports the output-queue occupancy fraction of the
        link ``current -> neighbor`` (the hardware uses per-port packet
        counters, §IV-B).  The fallback/commit state machine matches
        :meth:`GreediestRouting.next_hop`.
        """
        if state is None:
            state = RouteState()
        if not first_hop or state.commit is not None or state.in_fallback:
            return self.next_hop(current, dst, dst_coords, state)
        view = self._views[current]
        if dst in view.id_to_nbr_index:
            return dst, RouteState()
        candidates = self.candidate_set(current, dst, dst_coords)
        if not candidates:
            return self.next_hop(current, dst, dst_coords, state)
        best_score, best = candidates[0]
        if len(candidates) == 1 or port_load(current, best) < self.congestion_threshold:
            return self.next_hop(current, dst, dst_coords, state)
        _score, diverted = min(
            candidates,
            key=lambda item: (port_load(current, item[1]), item[0], item[1]),
        )
        return diverted, RouteState()
