"""Virtual-space coordinates and circular distances (paper §III-B, Figure 4b).

String Figure places every memory node at a random coordinate in
``[0, 1)`` on the unit ring of each of its ``L`` virtual spaces.  All
routing decisions reduce to comparisons of *circular distances* between
those coordinates:

* ``D(u, v) = min(|u - v|, 1 - |u - v|)`` — the circular distance
  between two coordinates on one ring (paper's ``D``).
* ``MD(U, V) = min_i D(u_i, v_i)`` — the minimum circular distance
  between two nodes across all virtual spaces (paper's ``MD``).

For uni-directional networks the relevant notion is the *clockwise*
distance ``(v - u) mod 1``: a packet on a clockwise ring can only make
progress in one direction.

The paper's ``BalancedCoordinateGen()`` (Figure 4b) keeps each ring's
node spacing balanced — imbalanced connections concentrate congestion.
We reproduce it with best-of-k candidate sampling: each new coordinate
is the candidate (out of ``k`` uniform draws) that maximizes the minimum
circular distance to the coordinates already placed on that ring.
"""

from __future__ import annotations

import bisect
import math
import random
from collections.abc import Sequence

__all__ = [
    "circular_distance",
    "clockwise_distance",
    "min_circular_distance",
    "min_clockwise_distance",
    "quantize_coordinate",
    "balanced_coordinate",
    "CoordinateSystem",
]


def circular_distance(u: float, v: float) -> float:
    """Circular distance ``D(u, v)`` between two ring coordinates.

    Coordinates live on the unit circle ``[0, 1)``; the distance is the
    shorter of the two arcs, hence always in ``[0, 0.5]``.
    """
    d = abs(u - v)
    if d > 0.5:
        d = 1.0 - d
    return d


def clockwise_distance(u: float, v: float) -> float:
    """Clockwise (one-directional) arc length from *u* to *v* in ``[0, 1)``.

    When ``v`` is infinitesimally counter-clockwise of ``u`` the float
    modulo rounds up to 1.0; the result is clamped to the largest
    representable value below 1.0 (almost a full circle).
    """
    d = (v - u) % 1.0
    if d >= 1.0:
        return math.nextafter(1.0, 0.0)
    return d


def min_circular_distance(
    coords_u: Sequence[float], coords_v: Sequence[float]
) -> float:
    """Minimum circular distance ``MD`` across all virtual spaces.

    ``MD(U, V) = min_i D(u_i, v_i)`` where ``U`` and ``V`` are the
    coordinate vectors of two nodes (one entry per virtual space).
    """
    if len(coords_u) != len(coords_v):
        raise ValueError(
            f"coordinate vectors differ in length: {len(coords_u)} != {len(coords_v)}"
        )
    best = 0.5
    for u, v in zip(coords_u, coords_v):
        d = abs(u - v)
        if d > 0.5:
            d = 1.0 - d
        if d < best:
            best = d
    return best


def min_clockwise_distance(
    coords_u: Sequence[float], coords_v: Sequence[float]
) -> float:
    """Minimum clockwise distance across all virtual spaces (uni-directional)."""
    if len(coords_u) != len(coords_v):
        raise ValueError(
            f"coordinate vectors differ in length: {len(coords_u)} != {len(coords_v)}"
        )
    return min(clockwise_distance(u, v) for u, v in zip(coords_u, coords_v))


def quantize_coordinate(coord: float, bits: int = 7) -> float:
    """Round *coord* onto the ``2**bits`` grid used by hardware tables.

    The paper's routing table stores 7-bit virtual coordinates
    (Figure 6b).  Quantization maps ``[0, 1)`` onto multiples of
    ``1 / 2**bits`` and stays inside ``[0, 1)``.
    """
    if bits <= 0:
        raise ValueError(f"bits must be positive, got {bits}")
    levels = 1 << bits
    return (round(coord * levels) % levels) / levels


def balanced_coordinate(
    existing: Sequence[float], rng: random.Random, candidates: int = 8
) -> float:
    """Draw one balanced random coordinate (paper's BalancedCoordinateGen).

    Samples *candidates* uniform coordinates and returns the one whose
    minimum circular distance to the *existing* coordinates is largest.
    With ``candidates=1`` this degenerates to plain uniform sampling.
    """
    if candidates < 1:
        raise ValueError(f"candidates must be >= 1, got {candidates}")
    if not existing:
        return rng.random()
    best_coord = 0.0
    best_gap = -1.0
    for _ in range(candidates):
        c = rng.random()
        gap = min(circular_distance(c, e) for e in existing)
        if gap > best_gap:
            best_gap = gap
            best_coord = c
    return best_coord


class CoordinateSystem:
    """Coordinates of every node in every virtual space of one topology.

    Provides the node → coordinate-vector directory used when a packet
    is injected (the source writes the destination's coordinates into
    the packet header; per-hop routing then needs only local state), and
    the per-space ring orders used for topology construction.

    Parameters
    ----------
    num_nodes:
        Number of memory nodes ``N``.
    num_spaces:
        Number of virtual spaces ``L`` (= ⌊p/2⌋ for p-port routers).
    seed:
        Seed for reproducible coordinate assignment.
    candidates:
        Best-of-k factor for balanced generation; 1 = plain uniform.
    coord_bits:
        If not ``None``, quantize all coordinates to this many bits
        (hardware-accurate mode; the paper uses 7-bit table entries).
    """

    def __init__(
        self,
        num_nodes: int,
        num_spaces: int,
        seed: int | None = None,
        candidates: int = 8,
        coord_bits: int | None = None,
    ) -> None:
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        if num_spaces < 1:
            raise ValueError(f"num_spaces must be >= 1, got {num_spaces}")
        self.num_nodes = num_nodes
        self.num_spaces = num_spaces
        self.seed = seed
        self.candidates = candidates
        self.coord_bits = coord_bits
        # _coords[space][node] -> coordinate in [0, 1)
        self._coords: list[list[float]] = []
        from repro.utils.rng import derive_rng

        for space in range(num_spaces):
            rng = derive_rng(seed, "coordinates", space)
            coords: list[float] = []
            sorted_coords: list[float] = []
            for _node in range(num_nodes):
                c = self._balanced_draw(sorted_coords, rng, candidates)
                if coord_bits is not None:
                    c = quantize_coordinate(c, coord_bits)
                    c = self._dedupe_quantized(c, coords, coord_bits)
                coords.append(c)
                bisect.insort(sorted_coords, c)
            self._coords.append(coords)
        # Per-space ring order: node ids sorted by coordinate.
        self._rings: list[list[int]] = [
            sorted(range(num_nodes), key=lambda n, s=space: (self._coords[s][n], n))
            for space in range(num_spaces)
        ]
        self._positions: list[dict[int, int]] = [
            {node: idx for idx, node in enumerate(ring)} for ring in self._rings
        ]

    @staticmethod
    def _balanced_draw(
        sorted_coords: list[float], rng: random.Random, candidates: int
    ) -> float:
        """Best-of-k balanced draw using bisection on the sorted ring.

        Equivalent to :func:`balanced_coordinate` but O(log n) per
        candidate instead of O(n): the minimum circular distance to a
        sorted coordinate set is realized by one of the two coordinates
        adjacent to the insertion point (with wraparound).
        """
        if not sorted_coords:
            return rng.random()
        n = len(sorted_coords)
        best_coord = 0.0
        best_gap = -1.0
        for _ in range(candidates):
            c = rng.random()
            i = bisect.bisect_left(sorted_coords, c)
            right = sorted_coords[i % n]
            left = sorted_coords[(i - 1) % n]
            gap = min(circular_distance(c, left), circular_distance(c, right))
            if gap > best_gap:
                best_gap = gap
                best_coord = c
        return best_coord

    @staticmethod
    def _dedupe_quantized(
        c: float, existing: list[float], bits: int
    ) -> float:
        """Nudge a quantized coordinate off already-used grid points.

        With more nodes than grid points duplicates are unavoidable; in
        that case the original coordinate is kept (ring order then falls
        back to node-id tie-breaking).
        """
        levels = 1 << bits
        if len(existing) >= levels:
            return c
        used = set(existing)
        step = 1.0 / levels
        probe = c
        for _ in range(levels):
            if probe not in used:
                return probe
            probe = (probe + step) % 1.0
        return c

    def coordinate(self, node: int, space: int) -> float:
        """Coordinate of *node* in *space*."""
        return self._coords[space][node]

    def vector(self, node: int) -> tuple[float, ...]:
        """Coordinate vector of *node* across all spaces."""
        return tuple(self._coords[space][node] for space in range(self.num_spaces))

    def ring(self, space: int) -> list[int]:
        """Node ids in ring (ascending-coordinate) order for *space*."""
        return list(self._rings[space])

    def ring_position(self, node: int, space: int) -> int:
        """Index of *node* on the ring of *space*."""
        return self._positions[space][node]

    def ring_neighbor(self, node: int, space: int, offset: int) -> int:
        """Node *offset* ring slots clockwise from *node* in *space*.

        Negative offsets walk counter-clockwise.
        """
        ring = self._rings[space]
        pos = self._positions[space][node]
        return ring[(pos + offset) % len(ring)]

    def successor(self, node: int, space: int) -> int:
        """Clockwise ring neighbor of *node* in *space*."""
        return self.ring_neighbor(node, space, 1)

    def predecessor(self, node: int, space: int) -> int:
        """Counter-clockwise ring neighbor of *node* in *space*."""
        return self.ring_neighbor(node, space, -1)

    def md(self, a: int, b: int) -> float:
        """Minimum circular distance between nodes *a* and *b*."""
        return min_circular_distance(self.vector(a), self.vector(b))

    def md_clockwise(self, a: int, b: int) -> float:
        """Minimum clockwise distance from node *a* to node *b*."""
        return min_clockwise_distance(self.vector(a), self.vector(b))

    def balance_score(self, space: int) -> float:
        """Ratio of smallest to mean ring gap in *space* (1.0 = perfectly even).

        Used by tests and the sensitivity bench to verify that balanced
        generation produces materially more even rings than plain
        uniform sampling.
        """
        ring = self._rings[space]
        coords = self._coords[space]
        n = len(ring)
        if n < 2:
            return 1.0
        gaps = []
        for i, node in enumerate(ring):
            nxt = ring[(i + 1) % n]
            gaps.append((coords[nxt] - coords[node]) % 1.0)
        mean_gap = 1.0 / n
        return min(gaps) / mean_gap
