"""MUX-based per-node topology switch (paper §IV-B, Figure 7).

Each memory node's router has ``p`` network ports, but the node may be
wired to more than ``p`` physical connections: its basic random-topology
links plus up to two shortcut wires (and up to two incoming shortcut
wires from its ring predecessors).  A small multiplexer stage — the
*topology switch* — selects which ``p`` of those wires are attached to
the ports at any moment.  Reconfiguration is the act of changing that
selection (plus the routing-table bit flips).

This module models the switch for one node: it knows every wire the
node could attach and validates that activations never exceed the port
budget.  The actual selection policy lives in
:class:`repro.core.reconfig.ReconfigurationManager`.
"""

from __future__ import annotations

from repro.core.topology import LinkDirection, LinkKind, StringFigureTopology

__all__ = ["TopologySwitch"]


class TopologySwitch:
    """The wire-selection multiplexer of a single memory node."""

    def __init__(self, topology: StringFigureTopology, node: int) -> None:
        self.topology = topology
        self.node = node

    def attached_wires(self) -> list[tuple[int, int]]:
        """Every physical wire terminating at this node (any state)."""
        wires = []
        for u, v in self.topology.physical_links():
            if u == self.node or v == self.node:
                wires.append((u, v))
        return wires

    def shortcut_wires(self) -> list[tuple[int, int]]:
        """Shortcut wires at this node (the switch's extra inputs)."""
        return [
            (u, v)
            for (u, v) in self.attached_wires()
            if self.topology.link_kind(u, v) is LinkKind.SHORTCUT
        ]

    def ports_in_use(self) -> int:
        """Router ports currently consumed by active wires."""
        return self.topology.active_degree(self.node)

    def free_ports(self) -> int:
        """Ports available for switching in additional wires."""
        return self.topology.num_ports - self.ports_in_use()

    def can_activate(self, u: int, v: int) -> bool:
        """Whether switching wire ``(u, v)`` in respects the port budget.

        Both endpoints must be active nodes with a free port (a free
        *out* port at ``u`` and *in* port at ``v`` in UNI mode — the
        accounting below is conservative and simply requires a free
        port at each endpoint).
        """
        topo = self.topology
        if topo.link_kind(u, v) is None:
            return False
        if not (topo.is_active(u) and topo.is_active(v)):
            return False
        if self.node not in (u, v):
            return False
        other = v if u == self.node else u
        if self.free_ports() < 1:
            return False
        other_switch = TopologySwitch(topo, other)
        return other_switch.free_ports() >= 1

    def mux_count(self) -> int:
        """Number of 2:1 mux stages needed (hardware-cost accounting).

        One mux per port that can alternatively attach a shortcut wire;
        following Figure 7 the switch needs at most one mux per shortcut
        wire at each of the input and output sides.
        """
        shortcuts = len(self.shortcut_wires())
        if self.topology.direction is LinkDirection.UNI:
            return shortcuts  # each uni wire needs a mux on one side only
        return 2 * shortcuts
