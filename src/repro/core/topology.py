"""String Figure topology construction (paper §III-A, Figure 4a).

The balanced random topology is built in four steps:

1. Construct ``L = ⌊p/2⌋`` virtual spaces for ``p``-port routers.
2. Place every node at a balanced random coordinate in each space
   (:class:`repro.core.coordinates.CoordinateSystem`).
3. Interconnect ring neighbors in every space.  A pair adjacent in two
   spaces shares one physical link, freeing router ports.
4. Pair up remaining free ports, preferring the pair of nodes with the
   longest distance (largest ``MD``).

On top of the basic topology, shortcut wires to 2-/4-hop clockwise
space-0 neighbors are generated (:mod:`repro.core.shortcuts`).  In the
fully-populated network the shortcuts are *dormant*: the basic topology
already uses every router port, and the per-node topology switch
(Figure 7) can swap shortcuts in when reconfiguration frees ports.

Both bi-directional (default; matches the paper's Figure 3 drawing) and
uni-directional (the paper's final design choice, §IV-C) link modes are
supported.  In uni-directional mode every ring is a directed clockwise
cycle and routing uses clockwise distances.
"""

from __future__ import annotations

from enum import Enum

import networkx as nx

from repro.core.coordinates import CoordinateSystem
from repro.core.shortcuts import SHORTCUT_OFFSETS, generate_shortcuts

__all__ = ["LinkDirection", "LinkKind", "StringFigureTopology", "S2Topology"]


class LinkDirection(str, Enum):
    """Whether links carry traffic both ways or clockwise only."""

    BI = "bi"
    UNI = "uni"


class LinkKind(str, Enum):
    """Provenance of a physical link."""

    RING = "ring"
    PAIRING = "pairing"
    SHORTCUT = "shortcut"


class StringFigureTopology:
    """The String Figure balanced random memory-network topology.

    Parameters
    ----------
    num_nodes:
        Number of memory nodes ``N`` (arbitrary — no power-of-two or
        perfect-square constraint; this is one of the design goals).
    num_ports:
        Router ports ``p`` available for network links (the terminal
        port to the local memory stack / processor is *not* counted,
        following the paper).
    seed:
        Seed for reproducible construction.
    with_shortcuts:
        Generate shortcut wires (disable to obtain the S2 baseline).
    direction:
        ``LinkDirection.BI`` (default) or ``LinkDirection.UNI``.
    candidates:
        Best-of-k factor of balanced coordinate generation.
    coord_bits:
        Optional hardware coordinate quantization (7 in the paper).

    Notes
    -----
    The instance keeps two layers of state:

    * the immutable *physical* wiring (rings + pairings + shortcut
      wires), and
    * a mutable *activation* overlay (which nodes are powered/mounted
      and which shortcut wires are switched in), driven by
      :class:`repro.core.reconfig.ReconfigurationManager`.
    """

    name = "SF"
    #: String Figure reconfigures a deployed network (Table II).
    reconfigurable = True
    #: Router radix stays constant as the network scales (Table II).
    radix_scales_with_n = False

    def __init__(
        self,
        num_nodes: int,
        num_ports: int,
        seed: int | None = None,
        with_shortcuts: bool = True,
        direction: LinkDirection | str = LinkDirection.BI,
        candidates: int = 8,
        coord_bits: int | None = None,
    ) -> None:
        if num_nodes < 2:
            raise ValueError(f"num_nodes must be >= 2, got {num_nodes}")
        if num_ports < 2:
            raise ValueError(f"num_ports must be >= 2, got {num_ports}")
        self.num_nodes = num_nodes
        self.num_ports = num_ports
        self.seed = seed
        self.direction = LinkDirection(direction)
        self.with_shortcuts = with_shortcuts
        self.num_spaces = num_ports // 2
        self.coords = CoordinateSystem(
            num_nodes,
            self.num_spaces,
            seed=seed,
            candidates=candidates,
            coord_bits=coord_bits,
        )

        # Physical wiring -------------------------------------------------
        # _links maps a canonical link key to its LinkKind; for BI the key
        # is an ordered (min, max) pair, for UNI it is the directed pair.
        self._links: dict[tuple[int, int], LinkKind] = {}
        self._ring_spaces: dict[tuple[int, int], list[int]] = {}
        self._build_rings()
        self._build_pairings()
        self._shortcut_wires: list[tuple[int, int]] = []
        self._overlapping_shortcuts: list[tuple[int, int]] = []
        if with_shortcuts:
            self._build_shortcuts()

        # Activation overlay ----------------------------------------------
        self.node_active: list[bool] = [True] * num_nodes
        self._active_shortcuts: set[tuple[int, int]] = set()

        # Adjacency indexes (base links only; shortcuts tracked separately
        # so activation toggles stay O(1)).
        self._adj_out: list[set[int]] = [set() for _ in range(num_nodes)]
        self._adj_in: list[set[int]] = [set() for _ in range(num_nodes)]
        self._shortcut_adj_out: list[set[int]] = [set() for _ in range(num_nodes)]
        self._shortcut_adj_in: list[set[int]] = [set() for _ in range(num_nodes)]
        for (u, v), kind in self._links.items():
            if kind is LinkKind.SHORTCUT:
                continue
            self._adj_out[u].add(v)
            self._adj_in[v].add(u)
            if self.direction is LinkDirection.BI:
                self._adj_out[v].add(u)
                self._adj_in[u].add(v)

    # -- construction ------------------------------------------------------

    def _link_key(self, u: int, v: int) -> tuple[int, int]:
        if self.direction is LinkDirection.BI:
            return (u, v) if u < v else (v, u)
        return (u, v)

    def _build_rings(self) -> None:
        """Step 3: interconnect ring neighbors in every virtual space."""
        for space in range(self.num_spaces):
            ring = self.coords.ring(space)
            n = len(ring)
            for i, node in enumerate(ring):
                succ = ring[(i + 1) % n]
                if succ == node:
                    continue
                key = self._link_key(node, succ)
                self._links.setdefault(key, LinkKind.RING)
                self._ring_spaces.setdefault(key, []).append(space)

    def _port_usage(self) -> tuple[list[int], list[int]]:
        """Return (out_used, in_used) port counts per node.

        In BI mode a link consumes one port at each endpoint and the two
        lists are identical; in UNI mode out- and in-ports are tracked
        separately (p/2 of each).
        """
        out_used = [0] * self.num_nodes
        in_used = [0] * self.num_nodes
        for (u, v), kind in self._links.items():
            if kind is LinkKind.SHORTCUT:
                continue  # shortcut wires attach through the switch
            out_used[u] += 1
            in_used[v] += 1
            if self.direction is LinkDirection.BI:
                out_used[v] += 1
                in_used[u] += 1
        return out_used, in_used

    def _build_pairings(self) -> None:
        """Step 4: connect pairs of nodes that still have free ports."""
        if self.direction is LinkDirection.BI:
            budget = self.num_ports
            out_used, _ = self._port_usage()
            free = {v: budget - out_used[v] for v in range(self.num_nodes)}
            distance = self.coords.md
        else:
            budget = self.num_ports // 2
            out_used, in_used = self._port_usage()
            free_out = {v: budget - out_used[v] for v in range(self.num_nodes)}
            free_in = {v: budget - in_used[v] for v in range(self.num_nodes)}
            distance = self.coords.md_clockwise

        while True:
            best: tuple[float, int, int] | None = None
            if self.direction is LinkDirection.BI:
                nodes = [v for v, f in free.items() if f > 0]
                for i, u in enumerate(nodes):
                    for v in nodes[i + 1 :]:
                        if self._link_key(u, v) in self._links:
                            continue
                        d = distance(u, v)
                        if best is None or d > best[0]:
                            best = (d, u, v)
            else:
                sources = [v for v, f in free_out.items() if f > 0]
                sinks = [v for v, f in free_in.items() if f > 0]
                for u in sources:
                    for v in sinks:
                        if u == v or (u, v) in self._links:
                            continue
                        d = distance(u, v)
                        if best is None or d > best[0]:
                            best = (d, u, v)
            if best is None:
                break
            _, u, v = best
            self._links[self._link_key(u, v)] = LinkKind.PAIRING
            if self.direction is LinkDirection.BI:
                free[u] -= 1
                free[v] -= 1
            else:
                free_out[u] -= 1
                free_in[v] -= 1

    def _build_shortcuts(self) -> None:
        """Generate shortcut wires; classify overlaps with base links."""
        for u, v in generate_shortcuts(self.coords, SHORTCUT_OFFSETS):
            key = self._link_key(u, v)
            if key in self._links:
                self._overlapping_shortcuts.append((u, v))
            else:
                self._links[key] = LinkKind.SHORTCUT
                self._shortcut_wires.append((u, v))

    # -- physical structure queries -----------------------------------------

    def physical_links(
        self, kinds: tuple[LinkKind, ...] | None = None
    ) -> list[tuple[int, int]]:
        """All physical wires, optionally filtered by :class:`LinkKind`."""
        if kinds is None:
            return list(self._links)
        return [k for k, kind in self._links.items() if kind in kinds]

    def link_kind(self, u: int, v: int) -> LinkKind | None:
        """Kind of the physical wire between *u* and *v* (None if absent)."""
        return self._links.get(self._link_key(u, v))

    def ring_spaces(self, u: int, v: int) -> list[int]:
        """Virtual spaces in which *u* and *v* are ring neighbors."""
        return list(self._ring_spaces.get(self._link_key(u, v), []))

    @property
    def shortcut_wires(self) -> list[tuple[int, int]]:
        """Shortcut wires that are distinct from base-topology links."""
        return list(self._shortcut_wires)

    @property
    def overlapping_shortcuts(self) -> list[tuple[int, int]]:
        """Generated shortcuts that coincide with base-topology links."""
        return list(self._overlapping_shortcuts)

    def base_degree(self, node: int) -> int:
        """Number of base-topology (non-shortcut) links at *node*."""
        deg = 0
        for (u, v), kind in self._links.items():
            if kind is LinkKind.SHORTCUT:
                continue
            if u == node or v == node:
                deg += 1
        return deg

    # -- activation overlay ---------------------------------------------------

    def is_active(self, node: int) -> bool:
        """Whether *node* is currently powered and mounted."""
        return self.node_active[node]

    @property
    def active_nodes(self) -> list[int]:
        """All currently active node ids."""
        return [v for v in range(self.num_nodes) if self.node_active[v]]

    def set_node_active(self, node: int, active: bool) -> None:
        """Power/mount state change (use the ReconfigurationManager)."""
        self.node_active[node] = active

    def activate_shortcut(self, u: int, v: int) -> None:
        """Switch the shortcut wire between *u* and *v* into the ports."""
        key = self._link_key(u, v)
        if self._links.get(key) is not LinkKind.SHORTCUT:
            raise ValueError(f"no shortcut wire between {u} and {v}")
        self._active_shortcuts.add(key)
        a, b = key
        self._shortcut_adj_out[a].add(b)
        self._shortcut_adj_in[b].add(a)
        if self.direction is LinkDirection.BI:
            self._shortcut_adj_out[b].add(a)
            self._shortcut_adj_in[a].add(b)

    def deactivate_shortcut(self, u: int, v: int) -> None:
        """Switch the shortcut wire between *u* and *v* back out."""
        key = self._link_key(u, v)
        if key not in self._active_shortcuts:
            return
        self._active_shortcuts.discard(key)
        a, b = key
        self._shortcut_adj_out[a].discard(b)
        self._shortcut_adj_in[b].discard(a)
        if self.direction is LinkDirection.BI:
            self._shortcut_adj_out[b].discard(a)
            self._shortcut_adj_in[a].discard(b)

    @property
    def active_shortcuts(self) -> set[tuple[int, int]]:
        """Shortcut wires currently switched into router ports."""
        return set(self._active_shortcuts)

    def _link_is_active(self, key: tuple[int, int]) -> bool:
        u, v = key
        if not (self.node_active[u] and self.node_active[v]):
            return False
        if self._links[key] is LinkKind.SHORTCUT:
            return key in self._active_shortcuts
        return True

    def active_links(self) -> list[tuple[int, int]]:
        """Physical links currently carrying traffic."""
        return [key for key in self._links if self._link_is_active(key)]

    def neighbors(self, node: int) -> list[int]:
        """Active neighbors of *node* (out-neighbors in UNI mode)."""
        if not self.node_active[node]:
            return []
        return sorted(
            w
            for w in self._adj_out[node] | self._shortcut_adj_out[node]
            if self.node_active[w]
        )

    def in_neighbors(self, node: int) -> list[int]:
        """Active in-neighbors (equals :meth:`neighbors` in BI mode)."""
        if self.direction is LinkDirection.BI:
            return self.neighbors(node)
        if not self.node_active[node]:
            return []
        return sorted(
            u
            for u in self._adj_in[node] | self._shortcut_adj_in[node]
            if self.node_active[u]
        )

    def active_degree(self, node: int) -> int:
        """Ports in use at *node* right now."""
        if self.direction is LinkDirection.BI:
            return len(self.neighbors(node))
        return len(self.neighbors(node)) + len(self.in_neighbors(node))

    @property
    def radix(self) -> int:
        """Network ports per router (constant in N — a design goal)."""
        return self.num_ports

    def link_channels(self, u: int, v: int) -> int:
        """Parallel physical channels per link (always 1 for SF)."""
        return 1

    # -- graph views -----------------------------------------------------------

    def graph(self, include_inactive: bool = False) -> nx.Graph:
        """NetworkX view of the active network (DiGraph in UNI mode)."""
        g: nx.Graph = nx.DiGraph() if self.direction is LinkDirection.UNI else nx.Graph()
        if include_inactive:
            g.add_nodes_from(range(self.num_nodes))
            edges = list(self._links)
        else:
            g.add_nodes_from(self.active_nodes)
            edges = self.active_links()
        for u, v in edges:
            g.add_edge(u, v, kind=self._links[(u, v)].value)
        return g

    def physical_graph(self) -> nx.Graph:
        """NetworkX view of every physical wire (shortcuts included)."""
        return self.graph(include_inactive=True)

    # -- invariants ----------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` if construction invariants are violated.

        * every node's base-topology port usage fits the port budget;
        * every virtual space's ring is a single cycle over all nodes;
        * at most two shortcut wires originate at any node;
        * active degree never exceeds the port budget.
        """
        out_used, in_used = self._port_usage()
        for v in range(self.num_nodes):
            if self.direction is LinkDirection.BI:
                assert out_used[v] <= self.num_ports, (
                    f"node {v} uses {out_used[v]} ports > budget {self.num_ports}"
                )
            else:
                half = self.num_ports // 2
                assert out_used[v] <= half and in_used[v] <= half, (
                    f"node {v} uses {out_used[v]}/{in_used[v]} of {half} uni ports"
                )
        for space in range(self.num_spaces):
            ring = self.coords.ring(space)
            assert sorted(ring) == list(range(self.num_nodes))
        origins: dict[int, int] = {}
        for u, _v in self._shortcut_wires + self._overlapping_shortcuts:
            origins[u] = origins.get(u, 0) + 1
        for node, count in origins.items():
            assert count <= len(SHORTCUT_OFFSETS), (
                f"node {node} originates {count} shortcuts"
            )
        for v in self.active_nodes:
            assert self.active_degree(v) <= self.num_ports + len(SHORTCUT_OFFSETS), (
                f"node {v} active degree exceeds switch capacity"
            )


class S2Topology(StringFigureTopology):
    """The S2 baseline (Yu & Qian, ICNP 2014): String Figure minus shortcuts.

    S2 uses the same multi-space balanced random construction and
    greediest routing but has no shortcut wires and no topology switch,
    hence no support for down-scaling an already-deployed network — the
    paper evaluates it as the impractical ideal "S2-ideal" that
    regenerates a fresh topology for every network scale.
    """

    name = "S2"
    #: S2 cannot down-scale a deployed network (paper §V evaluates the
    #: impractical "S2-ideal" that regenerates topologies per scale).
    reconfigurable = False
    radix_scales_with_n = False

    def __init__(
        self,
        num_nodes: int,
        num_ports: int,
        seed: int | None = None,
        direction: LinkDirection | str = LinkDirection.BI,
        candidates: int = 8,
        coord_bits: int | None = None,
    ) -> None:
        super().__init__(
            num_nodes,
            num_ports,
            seed=seed,
            with_shortcuts=False,
            direction=direction,
            candidates=candidates,
            coord_bits=coord_bits,
        )
