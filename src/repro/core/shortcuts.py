"""Shortcut generation (paper §III-A, Figure 3c).

Shortcuts are extra physical wires that keep network throughput high
after the network is scaled down (power-gated or unmounted nodes).  For
every node the generator adds connections to its two-hop and four-hop
clockwise neighbors on the *space-0* ring, but only toward nodes with a
larger node number, bounding the added wiring at two shortcuts per node.

Shortcuts that coincide with links of the basic balanced random
topology are not separate wires; the topology keeps them classified as
overlapping so port accounting stays correct.
"""

from __future__ import annotations

from repro.core.coordinates import CoordinateSystem

__all__ = ["generate_shortcuts", "SHORTCUT_OFFSETS"]

#: Clockwise ring offsets used for shortcut targets (paper: "two and
#: four hop neighbors ... in Virtual Space-0 in a clockwise manner").
SHORTCUT_OFFSETS: tuple[int, ...] = (2, 4)


def generate_shortcuts(
    coords: CoordinateSystem,
    offsets: tuple[int, ...] = SHORTCUT_OFFSETS,
    higher_id_only: bool = True,
) -> list[tuple[int, int]]:
    """Generate the shortcut wire list for a topology.

    Parameters
    ----------
    coords:
        The topology's coordinate system (defines the space-0 ring).
    offsets:
        Clockwise ring offsets to connect to (paper uses 2 and 4).
    higher_id_only:
        Apply the paper's rule of only connecting to nodes with a
        larger node number (limits each node to at most
        ``len(offsets)`` shortcuts).

    Returns
    -------
    list of ``(u, v)`` node pairs, deduplicated, in deterministic order.
    ``u`` is the shortcut's origin (the lower ring position); for
    uni-directional topologies the wire is driven ``u -> v``.
    """
    n = coords.num_nodes
    seen: set[tuple[int, int]] = set()
    shortcuts: list[tuple[int, int]] = []
    for node in range(n):
        for offset in offsets:
            if offset % n == 0:
                continue  # wraps to self on tiny rings
            target = coords.ring_neighbor(node, 0, offset)
            if target == node:
                continue
            if higher_id_only and target <= node:
                continue
            key = (node, target)
            if key in seen:
                continue
            seen.add(key)
            shortcuts.append(key)
    return shortcuts
