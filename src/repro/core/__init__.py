"""The paper's primary contribution.

* :mod:`repro.core.coordinates` — circular distances and balanced
  coordinate generation (paper Figure 4b).
* :mod:`repro.core.topology` — the String Figure balanced random
  topology and the S2 baseline variant (paper §III-A, Figure 4a).
* :mod:`repro.core.shortcuts` — 2-/4-hop clockwise shortcut generation
  (paper Figure 3c).
* :mod:`repro.core.routing_table` — the per-router 1-/2-hop neighbor
  table with blocking/valid/hop bits (paper Figure 6b).
* :mod:`repro.core.routing` — greediest and adaptive greediest routing
  (paper §III-B).
* :mod:`repro.core.virtual_channels` — two-VC deadlock avoidance
  (paper §IV-A).
* :mod:`repro.core.reconfig` — dynamic and static network
  reconfiguration (paper §III-C).
* :mod:`repro.core.topology_switch` — the MUX-based topology switch
  (paper Figure 7).
"""

from repro.core.coordinates import (
    CoordinateSystem,
    circular_distance,
    clockwise_distance,
    min_circular_distance,
)
from repro.core.routing import AdaptiveGreediestRouting, GreediestRouting
from repro.core.routing_table import RoutingTable, TableEntry
from repro.core.topology import S2Topology, StringFigureTopology

__all__ = [
    "AdaptiveGreediestRouting",
    "CoordinateSystem",
    "GreediestRouting",
    "RoutingTable",
    "S2Topology",
    "StringFigureTopology",
    "TableEntry",
    "circular_distance",
    "clockwise_distance",
    "min_circular_distance",
]
