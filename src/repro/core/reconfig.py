"""Elastic network reconfiguration (paper §III-C).

String Figure supports two reconfiguration flavors with the same four
atomic steps:

1. **Block** the routing-table entries that will change in every
   affected router (packets keep flowing, avoiding the changing links).
2. **Enable/disable** the physical connections: links incident to a
   gated node are disabled and dormant *shortcut* wires that bridge the
   gap on the space-0 ring are switched in (Figure 7's topology switch).
3. **Validate/invalidate** the affected routing-table entries —
   gated neighbors become invalid, patched two-hop neighbors become
   one-hop (just bit flips; no entries are added or removed).
4. **Unblock** the entries.

*Dynamic* reconfiguration (power management) performs the steps online
and pays sleep/wake latencies (:mod:`repro.energy.power_gating`).
*Static* expansion/reduction (design reuse) performs them offline when
memory nodes are mounted on or unmounted from a pre-fabricated board.

Ring-patching rule: a dormant shortcut wire ``(u, v)`` is switched in
exactly when every original space-0 ring node strictly between ``u``
and ``v`` (clockwise) is inactive.  This re-closes the space-0 ring
around gated nodes, which preserves both network connectivity and the
greedy-fallback delivery guarantee.  Because shortcut wires only exist
at clockwise offsets 2 and 4 toward higher node ids, not every node is
*cleanly* gateable; :meth:`ReconfigurationManager.cleanly_gateable`
checks the condition and :meth:`gate_candidates` selects well-spaced
gateable sets, mirroring how a power manager would choose victims.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.core.routing import GreediestRouting
from repro.core.topology import LinkDirection, LinkKind, StringFigureTopology
from repro.core.topology_switch import TopologySwitch

__all__ = ["ReconfigEvent", "ReconfigurationManager"]


@dataclass
class ReconfigEvent:
    """Record of one reconfiguration: what changed and what it cost."""

    kind: str  # "gate_off", "gate_on", "unmount", "mount"
    node: int
    blocked_routers: list[int] = field(default_factory=list)
    links_disabled: list[tuple[int, int]] = field(default_factory=list)
    links_enabled: list[tuple[int, int]] = field(default_factory=list)
    shortcuts_activated: list[tuple[int, int]] = field(default_factory=list)
    shortcuts_deactivated: list[tuple[int, int]] = field(default_factory=list)
    tables_updated: list[int] = field(default_factory=list)


class ReconfigurationManager:
    """Coordinates topology and routing-table changes atomically."""

    def __init__(
        self, topology: StringFigureTopology, routing: GreediestRouting
    ) -> None:
        if not topology.with_shortcuts:
            raise ValueError(
                "reconfiguration requires a topology with shortcut wires "
                "(S2 does not support down-scaling; see paper §V)"
            )
        self.topology = topology
        self.routing = routing
        self.events: list[ReconfigEvent] = []

    # -- ring bookkeeping -------------------------------------------------------

    def _ring0(self) -> list[int]:
        return self.topology.coords.ring(0)

    def _active_ring_neighbors(self, node: int) -> tuple[int, int]:
        """Nearest *active* space-0 ring neighbors around *node*."""
        ring = self._ring0()
        n = len(ring)
        pos = self.topology.coords.ring_position(node, 0)
        pred = succ = node
        for step in range(1, n):
            cand = ring[(pos - step) % n]
            if self.topology.is_active(cand) and cand != node:
                pred = cand
                break
        for step in range(1, n):
            cand = ring[(pos + step) % n]
            if self.topology.is_active(cand) and cand != node:
                succ = cand
                break
        return pred, succ

    def _span_is_gated(self, u: int, v: int) -> bool:
        """True if every original ring node strictly between u→v is inactive."""
        ring = self._ring0()
        n = len(ring)
        pu = self.topology.coords.ring_position(u, 0)
        pv = self.topology.coords.ring_position(v, 0)
        steps = (pv - pu) % n
        for k in range(1, steps):
            if self.topology.is_active(ring[(pu + k) % n]):
                return False
        return True

    def _shortcut_span(self, u: int, v: int) -> tuple[int, int]:
        """Orient a shortcut wire clockwise on the space-0 ring."""
        ring_len = len(self._ring0())
        pu = self.topology.coords.ring_position(u, 0)
        pv = self.topology.coords.ring_position(v, 0)
        if (pv - pu) % ring_len <= (pu - pv) % ring_len:
            return u, v
        return v, u

    def _sync_shortcuts(self, event: ReconfigEvent) -> None:
        """Recompute the active shortcut set after a node state change.

        Two-phase selection, recorded as a diff on *event*:

        1. **Ring patches** — wires whose whole clockwise space-0 span
           is gated re-close the ring (delivery guarantee).
        2. **Opportunistic** — remaining dormant wires are switched in
           while both endpoints still have free ports, so the scaled-
           down network "fully utilizes router ports" (paper §III-A)
           and keeps throughput high.

        Because the selection is recomputed from scratch, powering a
        node back on automatically reclaims the ports its neighbors had
        loaned to opportunistic shortcuts.
        """
        topo = self.topology
        before = topo.active_shortcuts
        for u, v in list(before):
            topo.deactivate_shortcut(u, v)

        patches: list[tuple[int, int]] = []
        opportunistic: list[tuple[int, int]] = []
        for u, v in topo.shortcut_wires:
            if not (topo.is_active(u) and topo.is_active(v)):
                continue
            cu, cv = self._shortcut_span(u, v)
            if self._span_is_gated(cu, cv):
                patches.append((u, v))
            else:
                opportunistic.append((u, v))
        for u, v in patches + opportunistic:
            switch = TopologySwitch(topo, u)
            if switch.can_activate(u, v):
                topo.activate_shortcut(u, v)

        after = topo.active_shortcuts
        event.shortcuts_activated.extend(sorted(after - before))
        event.shortcuts_deactivated.extend(sorted(before - after))

    # -- affected-set computation ---------------------------------------------------

    def _radius2(self, seeds: set[int]) -> set[int]:
        """Active nodes within two hops of *seeds* (pre/post union view)."""
        affected = set(seeds)
        frontier = set(seeds)
        for _ in range(2):
            nxt: set[int] = set()
            for v in frontier:
                if not (0 <= v < self.topology.num_nodes):
                    continue
                for w in self.topology.neighbors(v):
                    nxt.add(w)
                for w in self.topology.in_neighbors(v):
                    nxt.add(w)
            frontier = nxt - affected
            affected |= nxt
        return {v for v in affected if self.topology.is_active(v)}

    # -- the four-step sequence ------------------------------------------------------

    def _reconfigure(self, node: int, activate: bool, kind: str) -> ReconfigEvent:
        topo = self.topology
        event = ReconfigEvent(kind=kind, node=node)

        # Pre-change neighborhood (routers whose tables mention `node`).
        pre_neighbors = set(topo.neighbors(node)) | set(topo.in_neighbors(node))
        affected = self._radius2(pre_neighbors | {node})

        # Step 1: block.
        for router in affected:
            table = self.routing.tables.get(router)
            if table is not None:
                table.block_all()
        event.blocked_routers = sorted(affected)

        # Step 2: enable/disable connections.
        if activate:
            topo.set_node_active(node, True)
        else:
            for w in pre_neighbors:
                key = (node, w) if topo.link_kind(node, w) else (w, node)
                event.links_disabled.append(key)
            topo.set_node_active(node, False)
        self._sync_shortcuts(event)
        if activate:
            event.links_enabled = [
                (node, w) for w in topo.neighbors(node)
            ] + [(w, node) for w in topo.in_neighbors(node)]

        # Step 3: validate/invalidate (rebuild local tables — semantically
        # the paper's bit flips, with via-sets refreshed for consistency).
        post_neighbors = set(topo.neighbors(node)) | set(topo.in_neighbors(node))
        changed_endpoints = {node} | pre_neighbors | post_neighbors
        for u, v in event.shortcuts_activated + event.shortcuts_deactivated:
            changed_endpoints |= {u, v}
        to_update = self._radius2(changed_endpoints)
        if activate:
            to_update.add(node)
        self.routing.rebuild(sorted(to_update | {node}))
        event.tables_updated = sorted(to_update)

        # Step 4: unblock.
        for router in affected | to_update:
            table = self.routing.tables.get(router)
            if table is not None:
                table.unblock_all()

        self.events.append(event)
        return event

    # -- public API --------------------------------------------------------------------

    def power_gate(self, node: int) -> ReconfigEvent:
        """Dynamically power a node (and its links) off."""
        if not self.topology.is_active(node):
            raise ValueError(f"node {node} is already inactive")
        if len(self.topology.active_nodes) <= 2:
            raise ValueError("cannot gate below two active nodes")
        return self._reconfigure(node, activate=False, kind="gate_off")

    def power_on(self, node: int) -> ReconfigEvent:
        """Bring a gated node back into the network (reverse steps)."""
        if self.topology.is_active(node):
            raise ValueError(f"node {node} is already active")
        return self._reconfigure(node, activate=True, kind="gate_on")

    def unmount(self, node: int) -> ReconfigEvent:
        """Static network reduction (offline; no wake latency applies)."""
        if not self.topology.is_active(node):
            raise ValueError(f"node {node} is already unmounted")
        return self._reconfigure(node, activate=False, kind="unmount")

    def mount(self, node: int) -> ReconfigEvent:
        """Static network expansion onto a reserved board position."""
        if self.topology.is_active(node):
            raise ValueError(f"node {node} is already mounted")
        return self._reconfigure(node, activate=True, kind="mount")

    # -- victim selection ----------------------------------------------------------------

    def cleanly_gateable(self, node: int) -> bool:
        """Whether gating *node* leaves the space-0 ring patchable.

        Requires both active ring neighbors present and a physical
        shortcut wire spanning them (the offset-2 wire exists only when
        the successor has the larger node id, per the generation rule).
        """
        if not self.topology.is_active(node):
            return False
        pred, succ = self._active_ring_neighbors(node)
        if pred == node or succ == node or pred == succ:
            return False
        return (
            self.topology.link_kind(pred, succ) in (LinkKind.SHORTCUT,)
            or self.topology.link_kind(pred, succ) is not None
        )

    def gate_candidates(self, count: int, min_spacing: int = 3) -> list[int]:
        """Select up to *count* well-spaced cleanly-gateable victims.

        Victims are chosen greedily around the space-0 ring with at
        least *min_spacing* ring slots between consecutive picks, so
        their shortcut patches never compete for the same ports.
        """
        ring = self._ring0()
        n = len(ring)
        picked: list[int] = []
        picked_pos: list[int] = []
        for pos, node in enumerate(ring):
            if len(picked) >= count:
                break
            if not self.cleanly_gateable(node):
                continue
            if any(
                min((pos - q) % n, (q - pos) % n) < min_spacing for q in picked_pos
            ):
                continue
            picked.append(node)
            picked_pos.append(pos)
        return picked

    # -- validation --------------------------------------------------------------------------

    def validate_connectivity(self) -> bool:
        """Whether every pair of active nodes can still reach each other."""
        g = self.topology.graph()
        if g.number_of_nodes() <= 1:
            return True
        if self.topology.direction is LinkDirection.UNI:
            return nx.is_strongly_connected(g)
        return nx.is_connected(g)
