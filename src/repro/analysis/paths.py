"""Path-length statistics (paper Figure 5, Figure 9a, §VI percentiles).

Two flavors:

* :func:`shortest_path_stats` — graph-theoretic shortest paths (what
  Figure 5 compares across Jellyfish, S2 and String Figure);
* :func:`greedy_path_stats` — the hop counts the greediest *protocol*
  actually achieves, which exceed the graph optimum slightly because
  routers only see their two-hop window (Figure 9a's "average hop
  counts of network designs").

Both sample sources/pairs for large networks; sampling is seeded and
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.utils.rng import derive_rng

__all__ = ["PathStats", "shortest_path_stats", "greedy_path_stats"]


@dataclass(frozen=True)
class PathStats:
    """Summary of a path-length distribution."""

    mean: float
    p10: float
    p90: float
    maximum: int
    samples: int

    @staticmethod
    def from_lengths(lengths: list[int]) -> "PathStats":
        if not lengths:
            raise ValueError("no path lengths to summarize")
        data = sorted(lengths)
        n = len(data)

        def pct(q: float) -> float:
            return float(data[min(n - 1, max(0, round(q * (n - 1))))])

        return PathStats(
            mean=sum(data) / n,
            p10=pct(0.10),
            p90=pct(0.90),
            maximum=data[-1],
            samples=n,
        )


def shortest_path_stats(
    graph: nx.Graph, sample_sources: int | None = 64, seed: int = 0
) -> PathStats:
    """Average/percentile shortest path length of *graph*.

    Samples BFS sources for graphs above the sample size; exact for
    small graphs or ``sample_sources=None``.
    """
    nodes = list(graph.nodes())
    if sample_sources is None or len(nodes) <= sample_sources:
        sources = nodes
    else:
        rng = derive_rng(seed, "sp-sources")
        sources = rng.sample(nodes, sample_sources)
    lengths: list[int] = []
    for src in sources:
        dist = nx.single_source_shortest_path_length(graph, src)
        lengths.extend(d for d in dist.values() if d > 0)
    return PathStats.from_lengths(lengths)


def greedy_path_stats(
    routing, sample_pairs: int = 2000, seed: int = 0
) -> PathStats:
    """Hop counts achieved by a greediest-routing instance.

    *routing* is a :class:`repro.core.routing.GreediestRouting`; pairs
    are sampled uniformly from the active nodes.
    """
    active = routing.topology.active_nodes
    rng = derive_rng(seed, "greedy-pairs")
    lengths: list[int] = []
    n = len(active)
    exhaustive = n * (n - 1) <= sample_pairs
    if exhaustive:
        pairs = [(a, b) for a in active for b in active if a != b]
    else:
        pairs = []
        while len(pairs) < sample_pairs:
            a = active[rng.randrange(n)]
            b = active[rng.randrange(n)]
            if a != b:
                pairs.append((a, b))
    for a, b in pairs:
        lengths.append(routing.route(a, b).hops)
    return PathStats.from_lengths(lengths)
