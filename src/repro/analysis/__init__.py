"""Graph and simulation analysis: paths, bisection, saturation, placement."""

from repro.analysis.bisection import empirical_bisection, matched_channels
from repro.analysis.paths import PathStats, greedy_path_stats, shortest_path_stats
from repro.analysis.placement import GridPlacement
from repro.analysis.routing_state import routing_state_bits, state_scaling_table
from repro.analysis.saturation import find_saturation

__all__ = [
    "GridPlacement",
    "PathStats",
    "empirical_bisection",
    "find_saturation",
    "greedy_path_stats",
    "matched_channels",
    "routing_state_bits",
    "shortest_path_stats",
    "state_scaling_table",
]
