"""Network saturation-point search (paper Figure 10).

The saturation injection rate is the offered load at which a network
stops accepting traffic gracefully.  Following common practice (and
matching how the paper's latency-versus-injection curves behave), a
rate is *saturated* when either

* the measured average latency exceeds ``latency_factor`` times the
  low-load latency, or
* the network fails to deliver at least ``accept_threshold`` of the
  measured packets within the drain window.

``find_saturation`` runs a coarse-to-fine search over injection rates
and returns the highest stable rate found (as a fraction of one packet
per node per cycle).
"""

from __future__ import annotations

from repro.network.config import NetworkConfig
from repro.traffic.injection import run_synthetic
from repro.traffic.patterns import TrafficPattern

__all__ = ["find_saturation"]


def _is_stable(
    stats, base_latency: float, latency_factor: float, accept_threshold: float
) -> bool:
    if stats.measured_delivered == 0:
        return False
    if stats.accepted_rate < accept_threshold:
        return False
    return stats.avg_latency <= latency_factor * base_latency


def find_saturation(
    topology,
    policy,
    pattern: TrafficPattern,
    config: NetworkConfig | None = None,
    low_rate: float = 0.02,
    latency_factor: float = 3.0,
    accept_threshold: float = 0.95,
    warmup: int = 200,
    measure: int = 500,
    drain_limit: int = 20_000,
    resolution: float = 0.05,
    seed: int = 0,
) -> float:
    """Highest stable injection rate for (topology, policy, pattern).

    Runs a low-load probe to calibrate the latency baseline, then
    bisects between the last stable and first unstable rate down to
    *resolution*.  Returns 0.0 when even the low-load probe saturates
    (as happens for hotspot traffic at scale).
    """

    def probe(rate: float):
        return run_synthetic(
            topology,
            policy,
            pattern,
            rate,
            config=config,
            warmup=warmup,
            measure=measure,
            drain_limit=drain_limit,
            seed=seed,
        )

    base = probe(low_rate)
    if base.measured_delivered == 0 or base.accepted_rate < accept_threshold:
        return 0.0
    base_latency = max(1.0, base.avg_latency)

    lo, hi = low_rate, 1.0
    # Exponential climb to find the first unstable rate.
    rate = max(2 * low_rate, 0.1)
    first_unstable = None
    while rate <= 1.0:
        stats = probe(rate)
        if _is_stable(stats, base_latency, latency_factor, accept_threshold):
            lo = rate
            rate = min(1.0, rate * 2) if rate < 1.0 else 1.01
            if rate == lo:
                break
        else:
            first_unstable = rate
            break
    if first_unstable is None:
        return 1.0
    hi = first_unstable
    # Bisect down to the requested resolution.
    while hi - lo > resolution:
        mid = (lo + hi) / 2
        stats = probe(mid)
        if _is_stable(stats, base_latency, latency_factor, accept_threshold):
            lo = mid
        else:
            hi = mid
    return lo
