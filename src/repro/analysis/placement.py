"""2D grid placement and wire-length modeling (paper §IV-C).

Memory nodes are physically placed on a 2D grid (PCB or interposer).
The paper's placement goal is to avoid long wires: one-hop neighbors
should sit within ten grid units, and an extra hop of link latency is
charged per ten grid units of wire beyond that.

The placement algorithm here is the natural greedy: lay nodes out in
space-0 ring order, boustrophedon across the grid.  Ring neighbors —
the bulk of the links — land at unit distance; the random long-range
links and shortcuts pay the long-wire penalty, exactly the cost
structure the paper describes.  :class:`GridPlacement` also exposes
MetaCube-style clustering: nodes are grouped into interposer clusters
by contiguous ring position, and links are classified intra- or
inter-cluster.
"""

from __future__ import annotations

import math

from repro.network.config import NetworkConfig

__all__ = ["GridPlacement"]


class GridPlacement:
    """Places a topology's nodes on a 2D grid and derives wire lengths."""

    def __init__(
        self,
        topology,
        config: NetworkConfig | None = None,
        cluster_size: int = 16,
    ) -> None:
        self.topology = topology
        self.config = config or NetworkConfig()
        self.cluster_size = cluster_size
        n = topology.num_nodes
        self.cols = max(1, math.isqrt(n))
        self.rows = -(-n // self.cols)
        order = self._placement_order()
        self._position: dict[int, tuple[int, int]] = {}
        for i, node in enumerate(order):
            r, c = divmod(i, self.cols)
            if r % 2 == 1:
                c = self.cols - 1 - c  # boustrophedon keeps successors adjacent
            self._position[node] = (r, c)

    def _placement_order(self) -> list[int]:
        coords = getattr(self.topology, "coords", None)
        if coords is not None:
            return coords.ring(0)
        return list(range(self.topology.num_nodes))

    # -- geometry -----------------------------------------------------------------

    def position(self, node: int) -> tuple[int, int]:
        """Grid (row, col) of *node*."""
        return self._position[node]

    def wire_length(self, u: int, v: int) -> int:
        """Manhattan wire length between two nodes, in grid units."""
        ru, cu = self._position[u]
        rv, cv = self._position[v]
        return abs(ru - rv) + abs(cu - cv)

    def link_latency(self, u: int, v: int) -> int:
        """Wire latency in cycles, with the paper's long-wire penalty.

        Base wire latency plus ``long_wire_extra_cycles`` per
        ``long_wire_grid_units`` of length beyond the first.
        """
        length = self.wire_length(u, v)
        extra_units = max(0, length - 1) // self.config.long_wire_grid_units
        return self.config.wire_cycles + extra_units * self.config.long_wire_extra_cycles

    def latency_fn(self):
        """A ``(u, v) -> cycles`` callable for the simulator."""
        return self.link_latency

    # -- statistics ------------------------------------------------------------------

    def wire_stats(self) -> dict[str, float]:
        """Wire-length distribution over the topology's physical links."""
        links = self._links()
        lengths = [self.wire_length(u, v) for u, v in links]
        if not lengths:
            return {"mean": 0.0, "max": 0.0, "long_fraction": 0.0}
        long_count = sum(
            1 for w in lengths if w > self.config.long_wire_grid_units
        )
        return {
            "mean": sum(lengths) / len(lengths),
            "max": float(max(lengths)),
            "long_fraction": long_count / len(lengths),
        }

    def _links(self) -> list[tuple[int, int]]:
        physical = getattr(self.topology, "physical_links", None)
        if physical is not None:
            return physical()
        return list(self.topology.graph().edges())

    # -- MetaCube clustering -------------------------------------------------------------

    def cluster_of(self, node: int) -> int:
        """MetaCube (interposer cluster) index of *node*."""
        order = self._placement_order()
        index = {n: i for i, n in enumerate(order)}
        return index[node] // self.cluster_size

    def cluster_link_split(self) -> dict[str, int]:
        """Counts of intra- versus inter-MetaCube links."""
        order = self._placement_order()
        index = {n: i for i, n in enumerate(order)}
        intra = inter = 0
        for u, v in self._links():
            if index[u] // self.cluster_size == index[v] // self.cluster_size:
                intra += 1
            else:
                inter += 1
        return {"intra": intra, "inter": inter}
