"""Empirical bisection bandwidth (paper §V, "Bisection bandwidth").

Random topologies have no closed-form bisection, so the paper
estimates an empirical minimum: split the nodes into two random
balanced partitions, compute the max flow between them (unit link
capacities), repeat for 50 partitions and keep the minimum; then
average that minimum over 20 independently generated topologies.  The
same procedure applied to the deterministic baselines yields the
numbers used to bandwidth-match ODM and AFB.
"""

from __future__ import annotations

import networkx as nx

from repro.utils.rng import derive_rng

__all__ = ["empirical_bisection", "matched_channels"]


def _partition_max_flow(graph: nx.Graph, part_a: set, part_b: set) -> float:
    """Max flow between two node sets with unit edge capacities."""
    flow_graph = nx.DiGraph()
    for u, v in graph.edges():
        flow_graph.add_edge(u, v, capacity=1.0)
        if not graph.is_directed():
            flow_graph.add_edge(v, u, capacity=1.0)
    source, sink = "__source__", "__sink__"
    for node in part_a:
        flow_graph.add_edge(source, node, capacity=float("inf"))
    for node in part_b:
        flow_graph.add_edge(node, sink, capacity=float("inf"))
    return nx.maximum_flow_value(flow_graph, source, sink)


def empirical_bisection(
    graph: nx.Graph, partitions: int = 50, seed: int = 0
) -> float:
    """Minimum max-flow over *partitions* random balanced bipartitions."""
    nodes = list(graph.nodes())
    if len(nodes) < 2:
        raise ValueError("bisection needs at least two nodes")
    rng = derive_rng(seed, "bisection")
    best = float("inf")
    half = len(nodes) // 2
    for _ in range(partitions):
        shuffled = nodes[:]
        rng.shuffle(shuffled)
        part_a = set(shuffled[:half])
        part_b = set(shuffled[half:])
        flow = _partition_max_flow(graph, part_a, part_b)
        if flow < best:
            best = flow
    return best


def matched_channels(
    reference_graph: nx.Graph,
    mesh_graph: nx.Graph,
    partitions: int = 20,
    seed: int = 0,
) -> int:
    """Parallel-channel factor matching a mesh's bisection to a reference.

    Used to configure ODM: returns
    ``ceil(bisection(reference) / bisection(mesh))`` (at least 1).
    """
    ref = empirical_bisection(reference_graph, partitions, seed)
    mesh = empirical_bisection(mesh_graph, partitions, seed)
    if mesh <= 0:
        raise ValueError("mesh bisection is zero; graph disconnected?")
    return max(1, -(-int(ref) // max(1, int(mesh))))
