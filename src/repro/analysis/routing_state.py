"""Routing-state scaling comparison (paper §III-B).

The paper motivates the hybrid compute+table scheme by routing-state
growth: k-shortest-path forwarding on a random graph needs
``O(N log N)`` table bits per router and ``O(N^2 log N)`` network-wide,
while String Figure's one-/two-hop table stays at ``p(p+1)`` entries —
constant in N.  This module computes per-router state for each scheme
so the claim can be regenerated as a table:

* ``sf`` — the p(p+1)-entry table of §IV-B (bit-accurate),
* ``minimal`` — one next-hop entry per destination (mesh/FB-style
  destination-indexed tables),
* ``ksp`` — k next-hop entries per destination (Jellyfish-style
  k-shortest-path forwarding).
"""

from __future__ import annotations

import math

from repro.core.routing_table import table_bits

__all__ = ["routing_state_bits", "state_scaling_table"]


def routing_state_bits(
    scheme: str, num_nodes: int, num_ports: int, k: int = 4
) -> float:
    """Per-router routing state in bits for a forwarding *scheme*."""
    if num_nodes < 2:
        raise ValueError(f"num_nodes must be >= 2, got {num_nodes}")
    port_bits = max(1, math.ceil(math.log2(max(2, num_ports))))
    node_bits = max(1, math.ceil(math.log2(num_nodes)))
    if scheme == "sf":
        return float(table_bits(num_nodes, num_ports))
    if scheme == "minimal":
        # One (destination -> output port) row per destination.
        return float((num_nodes - 1) * (node_bits + port_bits))
    if scheme == "ksp":
        # k next-hop choices per destination, plus a path id.
        return float((num_nodes - 1) * k * (node_bits + port_bits))
    raise ValueError(f"unknown scheme {scheme!r}; use sf, minimal or ksp")


def state_scaling_table(
    sizes: list[int], num_ports: int = 8, k: int = 4
) -> dict[str, dict[int, float]]:
    """Per-router state (KB) for each scheme across network sizes."""
    table: dict[str, dict[int, float]] = {}
    for scheme in ("sf", "minimal", "ksp"):
        table[scheme] = {
            n: routing_state_bits(scheme, n, num_ports, k) / 8 / 1024
            for n in sizes
        }
    return table
