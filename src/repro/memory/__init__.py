"""Memory-node substrate: addressing, DRAM timing, nodes, migration."""

from repro.memory.address import AddressMapper, migration_delta
from repro.memory.dram import DramModel
from repro.memory.migration import (
    MigrationEngine,
    MigrationRecord,
    PageDirectory,
    PageState,
)
from repro.memory.node import MemoryNode

__all__ = [
    "AddressMapper",
    "DramModel",
    "MemoryNode",
    "MigrationEngine",
    "MigrationRecord",
    "PageDirectory",
    "PageState",
    "migration_delta",
]
