"""Memory-node substrate: address interleaving, DRAM timing, node model."""

from repro.memory.address import AddressMapper
from repro.memory.dram import DramModel
from repro.memory.node import MemoryNode

__all__ = ["AddressMapper", "DramModel", "MemoryNode"]
