"""Memory-node service model: DRAM behind a banked controller.

A memory node receives request packets from the network, queues them at
its memory controller, serves them with DRAM timing, and (for reads)
injects a response packet back to the requester.  The controller is
work-conserving and tracks occupancy *per bank*: accesses to different
banks proceed in parallel (bank-level parallelism), while accesses to
the same bank serialize behind each other — enough fidelity to make
hotspot destinations a realistic bottleneck, and to let background
migration writes overlap foreground reads landing in other banks,
without simulating a full scheduler.
"""

from __future__ import annotations

from repro.memory.dram import DramModel
from repro.network.config import NetworkConfig
from repro.network.packet import Packet, PacketKind
from repro.network.simulator import NetworkSimulator

__all__ = ["MemoryNode"]


class MemoryNode:
    """DRAM + banked memory controller of one network node."""

    def __init__(
        self,
        node_id: int,
        sim: NetworkSimulator,
        config: NetworkConfig | None = None,
        num_banks: int = 8,
    ) -> None:
        self.node_id = node_id
        self.sim = sim
        self.config = config or sim.config
        self.dram = DramModel(self.config, num_banks=num_banks)
        self._bank_free_at = [0] * num_banks
        self.served = 0

    @property
    def busy_until(self) -> int:
        """Cycle at which the last-finishing bank goes idle."""
        return max(self._bank_free_at)

    def _serve_line(self, now: int, local_addr: int) -> int:
        """One cache-line access through its bank; returns completion."""
        bank = self.dram.bank_of(local_addr)
        latency = self.dram.access_cycles(local_addr)
        start = max(now, self._bank_free_at[bank])
        done = start + latency
        self._bank_free_at[bank] = done
        return done

    def service(
        self, packet: Packet, now: int, local_addr: int, respond: bool = True
    ) -> int:
        """Serve a request packet; returns its completion time.

        Reads trigger a response packet back to ``packet.src`` carrying
        one cache line (suppressed with ``respond=False`` for accesses
        local to the requesting socket); writes complete silently
        (write acks are covered by the unmeasured background, as in the
        paper's trace-driven setup).  DRAM energy is tallied on the
        simulator's stats.
        """
        done = self._serve_line(now, local_addr)
        self.served += 1
        self.sim.stats.dram_bits += 8 * self.config.cacheline_bytes
        if respond and packet.kind is PacketKind.READ_REQ:
            response = Packet(
                src=self.node_id,
                dst=packet.src,
                size_flits=self.config.packet_flits(self.config.cacheline_bytes),
                payload_bytes=self.config.cacheline_bytes,
                kind=PacketKind.READ_RESP,
                measured=packet.measured,
                context=packet.context,
            )
            self.sim.send(response, done)
        return done

    def service_bulk(self, now: int, local_addr: int, num_bytes: int) -> int:
        """Serve a multi-line transfer (page migration read or write).

        The transfer is issued as back-to-back cache-line bursts
        starting at ``local_addr``; lines in the same row serialize in
        their bank while rows striped across banks overlap, so bulk
        migration traffic and foreground accesses to *other* banks
        proceed in parallel.  Returns the completion time of the last
        line.
        """
        if num_bytes <= 0:
            raise ValueError(f"num_bytes must be positive, got {num_bytes}")
        line = self.config.cacheline_bytes
        done = now
        for offset in range(0, num_bytes, line):
            done = max(done, self._serve_line(now, local_addr + offset))
        self.served += 1
        self.sim.stats.dram_bits += 8 * num_bytes
        return done
