"""Memory-node service model: DRAM behind a single-issue controller.

A memory node receives request packets from the network, queues them at
its memory controller, serves them with DRAM timing, and (for reads)
injects a response packet back to the requester.  The controller is
work-conserving and serves one access at a time — enough fidelity to
make hotspot destinations a realistic bottleneck without simulating a
full scheduler.
"""

from __future__ import annotations

from repro.memory.dram import DramModel
from repro.network.config import NetworkConfig
from repro.network.packet import Packet, PacketKind
from repro.network.simulator import NetworkSimulator

__all__ = ["MemoryNode"]


class MemoryNode:
    """DRAM + memory controller of one network node."""

    def __init__(
        self,
        node_id: int,
        sim: NetworkSimulator,
        config: NetworkConfig | None = None,
        num_banks: int = 8,
    ) -> None:
        self.node_id = node_id
        self.sim = sim
        self.config = config or sim.config
        self.dram = DramModel(self.config, num_banks=num_banks)
        self._free_at = 0
        self.served = 0

    def service(
        self, packet: Packet, now: int, local_addr: int, respond: bool = True
    ) -> int:
        """Serve a request packet; returns its completion time.

        Reads trigger a response packet back to ``packet.src`` carrying
        one cache line (suppressed with ``respond=False`` for accesses
        local to the requesting socket); writes complete silently
        (write acks are covered by the unmeasured background, as in the
        paper's trace-driven setup).  DRAM energy is tallied on the
        simulator's stats.
        """
        latency = self.dram.access_cycles(local_addr)
        start = max(now, self._free_at)
        done = start + latency
        self._free_at = done
        self.served += 1
        self.sim.stats.dram_bits += 8 * self.config.cacheline_bytes
        if respond and packet.kind is PacketKind.READ_REQ:
            response = Packet(
                src=self.node_id,
                dst=packet.src,
                size_flits=self.config.packet_flits(self.config.cacheline_bytes),
                payload_bytes=self.config.cacheline_bytes,
                kind=PacketKind.READ_RESP,
                measured=packet.measured,
                context=packet.context,
            )
            self.sim.send(response, done)
        return done
