"""Per-node DRAM timing model (paper Table I).

Each 3D-stacked memory node exposes several banks with open-page row
buffers.  An access is a row hit (CAS only), a row conflict (precharge
+ activate + CAS) or an empty-bank activate.  Timings come from
:class:`repro.network.config.DramTiming` (tRCD=12 ns, tCL=6 ns,
tRP=14 ns, tRAS=33 ns) and are converted to network-clock cycles.
"""

from __future__ import annotations

from repro.network.config import NetworkConfig

__all__ = ["DramModel"]


class DramModel:
    """Open-page DRAM with per-bank row-buffer state for one node."""

    def __init__(
        self,
        config: NetworkConfig | None = None,
        num_banks: int = 8,
        row_bytes: int = 2048,
    ) -> None:
        if num_banks < 1:
            raise ValueError(f"num_banks must be >= 1, got {num_banks}")
        self.config = config or NetworkConfig()
        self.num_banks = num_banks
        self.row_bytes = row_bytes
        self._open_rows: dict[int, int] = {}
        self.hits = 0
        self.conflicts = 0
        self.empties = 0

    def _locate(self, local_addr: int) -> tuple[int, int]:
        row = local_addr // self.row_bytes
        bank = row % self.num_banks
        return bank, row

    def bank_of(self, local_addr: int) -> int:
        """Bank serving *local_addr* (for controller-side occupancy)."""
        return self._locate(local_addr)[0]

    def access_cycles(self, local_addr: int) -> int:
        """Service latency (network cycles) of one access; updates state."""
        bank, row = self._locate(local_addr)
        timing = self.config.dram
        open_row = self._open_rows.get(bank)
        if open_row == row:
            self.hits += 1
            ns = timing.row_hit_ns()
        elif open_row is None:
            self.empties += 1
            ns = timing.row_empty_ns()
        else:
            self.conflicts += 1
            ns = timing.row_miss_ns()
        self._open_rows[bank] = row
        return self.config.cycles_from_ns(ns)

    @property
    def accesses(self) -> int:
        return self.hits + self.conflicts + self.empties

    @property
    def row_hit_rate(self) -> float:
        """Fraction of accesses served from an open row buffer."""
        total = self.accesses
        return self.hits / total if total else 0.0
