"""Data migration engine: moving memory pages as real network traffic.

When the network scales down, the pages homed on the departing nodes do
not teleport — they are read out of the victim's DRAM, travel the
network as packets competing with foreground load for links, credits,
and DRAM service, and are written into their new owner's DRAM.  This
module pays that cost explicitly, closing the gap the instant
``AddressMapper.rebalance()`` remap left in the elasticity numbers.

Three pieces:

:class:`PageDirectory`
    The authoritative page-location table.  Every page is, at all
    times, *resident* on exactly one node or *in flight* from a source
    to a destination — the conservation invariant the tests pin.  The
    directory also rules on foreground requests: a request reaching a
    page's current owner is served; one reaching a node the page has
    left is forwarded; one reaching the destination of an in-flight
    page stalls until the page lands.

:class:`MigrationEngine`
    Executes one *batch* of page moves (the delta between two
    :class:`~repro.memory.address.AddressMapper` generations) through a
    :class:`~repro.network.simulator.NetworkSimulator`.  Each move is a
    pull: the new owner sends a ``MIG_READ`` request to the old owner,
    the old owner streams the page back as ``MIG_DATA`` chunks (DRAM
    read through its banked controller), and the new owner DRAM-writes
    the page and marks it landed.  Background pressure is bounded two
    ways: a byte-rate limit spaces page issues, and at most
    ``max_inflight_pages`` pages move concurrently.  ``teleport`` mode
    short-circuits the whole machinery (instant remap, zero traffic) —
    the PR-2 baseline every migration number is compared against.

:class:`MigrationRecord`
    Per-batch cost record: pages and bytes moved, makespan, chunk
    count.  :class:`~repro.network.elastic.LiveReconfigurator` attaches
    these to its reconfiguration events when an engine is installed as
    its migrator.

The engine's decisions are pure functions of its parameters and the
simulator's deterministic event order, so ``migration`` experiment
sweeps stay bit-identical at any worker count.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable

from repro.memory.address import AddressMapper, migration_delta
from repro.memory.node import MemoryNode
from repro.network.packet import Packet, PacketKind
from repro.network.simulator import NetworkSimulator

__all__ = [
    "PageState",
    "PageDirectory",
    "MigrationRecord",
    "MigrationEngine",
]


class PageState(Enum):
    """Where a page is in its migration lifecycle."""

    RESIDENT = "resident"
    IN_FLIGHT = "in_flight"


class PageDirectory:
    """Authoritative page-location table with in-flight tracking.

    Invariant: every populated page is resident on exactly one node or
    in flight between exactly one (src, dst) pair; there is no third
    state and no moment without an entry (:meth:`check_conservation`).
    """

    def __init__(self) -> None:
        self._owner: dict[int, int] = {}
        self._inflight: dict[int, tuple[int, int]] = {}
        self._waiters: dict[int, list[Callable[[int], None]]] = {}
        #: Pages destroyed by an unplanned failure (node crash with no
        #: surviving replica).  A lost page has no owner and no state;
        #: it is the one exception to the one-place invariant, and it is
        #: accounted explicitly so ``populated == resident + in_flight +
        #: lost`` stays checkable.
        self.lost: list[int] = []
        #: Arrival-ruling tallies — cheap always-on counters surfaced
        #: by the observability probes (repro.obs); never read by the
        #: migration machinery itself.
        self.ruling_counts: dict[str, int] = {
            "serve": 0, "stall": 0, "forward": 0, "lost": 0,
        }

    def populate(self, mapper: AddressMapper, num_pages: int) -> None:
        """Seed residency for pages ``0..num_pages-1`` from *mapper*."""
        for page in range(num_pages):
            self._owner[page] = mapper.node_of(mapper.page_addr(page))

    @property
    def num_pages(self) -> int:
        return len(self._owner)

    @property
    def pages(self) -> list[int]:
        return sorted(self._owner)

    def owner_of(self, page: int) -> int:
        """Node holding the page (the source, while in flight)."""
        return self._owner[page]

    def state_of(self, page: int) -> PageState:
        return PageState.IN_FLIGHT if page in self._inflight else PageState.RESIDENT

    def resident_on(self, node: int) -> list[int]:
        """Pages currently owned by *node* (including in-flight-out)."""
        return sorted(p for p, n in self._owner.items() if n == node)

    def resolve(self, page: int) -> int:
        """Node a *new* request for the page should target.

        While the page is in flight the destination is the target: the
        request either stalls there until the page lands, or (if issued
        after landing) is served directly.  Routing new requests to the
        destination instead of the source keeps them off the node that
        is about to lose its links.
        """
        pair = self._inflight.get(page)
        return pair[1] if pair is not None else self._owner[page]

    def arrival_ruling(self, node: int, page: int) -> tuple[str, int]:
        """How a request for *page* arriving at *node* must be handled.

        Returns ``("serve", node)``, ``("stall", node)`` (the page is
        inbound here — wait for it via :meth:`when_landed`),
        ``("forward", target)`` (the page lives elsewhere — one more
        network trip), or ``("lost", -1)`` — the page was destroyed by
        an unrecovered node crash, so the request must fail upward
        (there is no node that could ever serve it).
        """
        pair = self._inflight.get(page)
        if pair is not None:
            ruling = (
                ("stall", node) if node == pair[1] else ("forward", pair[1])
            )
        else:
            owner = self._owner.get(page)
            if owner is None:
                ruling = ("lost", -1)
            elif node == owner:
                ruling = ("serve", node)
            else:
                ruling = ("forward", owner)
        self.ruling_counts[ruling[0]] += 1
        return ruling

    @property
    def in_flight_count(self) -> int:
        """Pages currently mid-transfer (observability gauge)."""
        return len(self._inflight)

    def when_landed(self, page: int, callback: Callable[[int], None]) -> None:
        """Run ``callback(now)`` once the in-flight page lands."""
        if page not in self._inflight:
            raise ValueError(f"page {page} is not in flight")
        self._waiters.setdefault(page, []).append(callback)

    def begin_move(self, page: int, src: int, dst: int) -> None:
        if page in self._inflight:
            raise RuntimeError(f"page {page} is already in flight")
        if self._owner[page] != src:
            raise RuntimeError(
                f"page {page} is on node {self._owner[page]}, not {src}"
            )
        self._inflight[page] = (src, dst)

    def land(self, page: int, now: int) -> None:
        """Complete a move: ownership flips, stalled requests release."""
        _src, dst = self._inflight.pop(page)
        self._owner[page] = dst
        for callback in self._waiters.pop(page, []):
            callback(now)

    def teleport(self, page: int, dst: int) -> None:
        """Instant relocation (the zero-cost baseline)."""
        if page in self._inflight:
            raise RuntimeError(f"page {page} is in flight; cannot teleport")
        self._owner[page] = dst

    def drop_page(self, page: int) -> None:
        """Destroy a page (node crash with no replica to recover from).

        The page leaves the residency table and joins :attr:`lost`; a
        page mid-migration cannot be dropped this way (its source copy
        is the owner — crash handling must rule on the in-flight pair
        first).
        """
        if page in self._inflight:
            raise RuntimeError(
                f"page {page} is in flight; crash recovery must resolve "
                "the transfer before ruling it lost"
            )
        if page not in self._owner:
            raise ValueError(f"page {page} is not present")
        del self._owner[page]
        self.lost.append(page)

    def check_conservation(self) -> bool:
        """Every page in exactly one place; waiters only on in-flight.

        Lost pages are excluded from the one-place rule (they are
        nowhere, by definition) but must never overlap the residency
        or in-flight tables.
        """
        if not set(self._inflight) <= set(self._owner):
            return False
        if not set(self._waiters) <= set(self._inflight):
            return False
        if set(self.lost) & set(self._owner):
            return False
        return all(
            self._owner[p] == src for p, (src, _dst) in self._inflight.items()
        )


@dataclass
class MigrationRecord:
    """Cost record of one migration batch (or teleport)."""

    kind: str  # "out" (gate-off side) or "in" (wake side)
    nodes: tuple[int, ...]
    mode: str  # "migrate" or "teleport"
    t_start: int = 0
    t_end: int | None = None
    pages_moved: int = 0
    bytes_moved: int = 0
    chunks_sent: int = 0
    pages_planned: int = 0

    @property
    def done(self) -> bool:
        return self.t_end is not None

    @property
    def makespan_cycles(self) -> int:
        """Issue-to-last-land duration (0 for teleports and no-ops)."""
        return (self.t_end - self.t_start) if self.t_end is not None else 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "mode": self.mode,
            "nodes": list(self.nodes),
            "t_start": self.t_start,
            "t_end": self.t_end,
            "makespan_cycles": self.makespan_cycles,
            "pages_planned": self.pages_planned,
            "pages_moved": self.pages_moved,
            "bytes_moved": self.bytes_moved,
            "chunks_sent": self.chunks_sent,
            "done": self.done,
        }


@dataclass
class _Batch:
    """One in-progress set of moves."""

    moves: list[tuple[int, int, int]]
    record: MigrationRecord
    on_done: Callable[[int], None] | None
    next_index: int = 0
    pending_chunks: dict[int, int] = field(default_factory=dict)

    @property
    def issued_all(self) -> bool:
        return self.next_index >= len(self.moves)


#: Migration request packets carry a page id + addresses (16 B header).
_REQUEST_BYTES = 16


class MigrationEngine:
    """Schedules page moves as rate-limited background network traffic.

    Parameters
    ----------
    sim:
        The running network simulator (the engine registers a delivery
        hook for its ``MIG_*`` packets).
    mapper:
        The current :class:`AddressMapper` generation.  The engine owns
        it from here on: :meth:`migrate_out` / :meth:`migrate_in`
        advance it via ``rebalance``.
    directory:
        Shared :class:`PageDirectory` (also consulted by the
        foreground workload for request placement).
    memory_node:
        ``node_id -> MemoryNode`` accessor supplying DRAM service.
    rate_limit_bytes_per_cycle:
        Background bandwidth budget: consecutive page issues are spaced
        ``page_bytes / rate`` cycles apart.
    max_inflight_pages:
        Concurrent in-flight page cap (the second pressure bound).
    chunk_bytes:
        Payload of one ``MIG_DATA`` packet; a page travels as
        ``ceil(page/chunk)`` chunks so migration interleaves with
        foreground packets instead of monopolizing links.
    mode:
        ``"migrate"`` pays the real cost; ``"teleport"`` reproduces the
        PR-2 instant remap (zero traffic) for baseline comparisons.
    """

    def __init__(
        self,
        sim: NetworkSimulator,
        mapper: AddressMapper,
        directory: PageDirectory,
        memory_node: Callable[[int], MemoryNode],
        rate_limit_bytes_per_cycle: float = 16.0,
        max_inflight_pages: int = 4,
        chunk_bytes: int = 512,
        mode: str = "migrate",
        tclass: int = 0,
    ) -> None:
        if rate_limit_bytes_per_cycle <= 0:
            raise ValueError(
                f"rate limit must be positive, got {rate_limit_bytes_per_cycle}"
            )
        if max_inflight_pages < 1:
            raise ValueError(
                f"max_inflight_pages must be >= 1, got {max_inflight_pages}"
            )
        if chunk_bytes < sim.config.cacheline_bytes:
            raise ValueError(
                f"chunk_bytes must be at least one cache line "
                f"({sim.config.cacheline_bytes}), got {chunk_bytes}"
            )
        if mode not in ("migrate", "teleport"):
            raise ValueError(f"unknown migration mode {mode!r}")
        self.sim = sim
        self.mapper = mapper
        self.directory = directory
        self.memory_node = memory_node
        self.rate_limit = rate_limit_bytes_per_cycle
        self.max_inflight_pages = max_inflight_pages
        self.chunk_bytes = chunk_bytes
        self.mode = mode
        #: Traffic class stamped on MIG_READ/MIG_DATA packets.  With a
        #: QoS table installed, tagging migrations as the rate-shaped
        #: background class keeps bulk transfers out of the foreground's
        #: credit reservation; the default 0 leaves classless runs
        #: bit-identical.
        self.tclass = tclass
        self.page_bytes = mapper.interleave_bytes
        self.issue_interval = max(1, round(self.page_bytes / self.rate_limit))
        self.records: list[MigrationRecord] = []
        self._queue: deque[_Batch] = deque()
        self._current: _Batch | None = None
        self._inflight_pages = 0
        self._next_issue_at = 0
        self._pump_armed_at: int | None = None
        sim.on_delivery(self._on_delivery)

    # -- public API ---------------------------------------------------------

    @property
    def busy(self) -> bool:
        """A batch is executing or queued."""
        return self._current is not None or bool(self._queue)

    @property
    def total_bytes_moved(self) -> int:
        return sum(r.bytes_moved for r in self.records)

    @property
    def total_pages_moved(self) -> int:
        return sum(r.pages_moved for r in self.records)

    def migrate_out(
        self, nodes, on_done: Callable[[int], None] | None = None
    ) -> MigrationRecord:
        """Evacuate *nodes*: move their pages to the surviving actives.

        Advances the mapper generation immediately (new requests target
        the post-migration placement; the directory covers the
        transition), then streams the delta.  ``on_done(now)`` fires
        when the last page has landed — the reconfiguration pipeline's
        cue that the victims hold no data and may lose their links.
        """
        victims = set(int(n) for n in nodes)
        survivors = [n for n in self.mapper.nodes if n not in victims]
        return self._retarget(self.mapper.rebalance(survivors), "out", nodes, on_done)

    def migrate_in(
        self, nodes, on_done: Callable[[int], None] | None = None
    ) -> MigrationRecord:
        """Repatriate pages homed on the re-activated *nodes*.

        The nodes must belong to the mapper's home order (a gate-off or
        unmount put them there).  A genuinely new node id would silently
        fall into ``rebalance``'s fresh-interleave branch — reshuffling
        the entire footprint and invalidating every stored local offset
        — so it is rejected instead: a node outside the interleave
        holds no data and needs an explicit remap policy, not a
        migration.
        """
        woken = [int(n) for n in nodes]
        unknown = sorted(set(woken) - set(self.mapper.home))
        if unknown:
            raise ValueError(
                f"nodes {unknown} are outside the mapper's home order; "
                "migrate_in only repatriates previously gated nodes"
            )
        active = set(self.mapper.nodes) | set(woken)
        return self._retarget(self.mapper.rebalance(sorted(active)), "in", nodes, on_done)

    # -- batch machinery ----------------------------------------------------

    def transfer(
        self,
        moves: list[tuple[int, int, int]],
        kind: str,
        nodes,
        on_done: Callable[[int], None] | None = None,
    ) -> MigrationRecord:
        """Stream an explicit list of ``(page, src, dst)`` moves.

        Each source must be the page's current directory owner.  This
        is the batch machinery behind :meth:`migrate_out` /
        :meth:`migrate_in` exposed directly, so callers that compute
        placement outside the mapper-delta path — fault recovery
        reconstructing a crashed node's pages from their surviving
        replicas — pay the same rate-limited network cost.
        """
        now = self.sim.now
        record = MigrationRecord(
            kind=kind,
            nodes=tuple(int(n) for n in nodes),
            mode=self.mode,
            t_start=now,
            pages_planned=len(moves),
        )
        self.records.append(record)
        if self.mode == "teleport" or not moves:
            # Instant remap: the PR-2 behaviour, kept as the measurable
            # baseline (and the trivial no-data case).
            if self.mode == "teleport":
                for page, _src, dst in moves:
                    self.directory.teleport(page, dst)
            record.t_end = now
            record.pages_moved = len(moves) if self.mode == "teleport" else 0
            if on_done is not None:
                self.sim.schedule(now, on_done)
            return record
        self._queue.append(
            _Batch(moves=list(moves), record=record, on_done=on_done)
        )
        self._start_next_batch(now)
        return record

    def _retarget(
        self,
        new_mapper: AddressMapper,
        kind: str,
        nodes,
        on_done: Callable[[int], None] | None,
    ) -> MigrationRecord:
        old_mapper, self.mapper = self.mapper, new_mapper
        moves = migration_delta(old_mapper, new_mapper, self.directory.pages)
        return self.transfer(moves, kind, nodes, on_done)

    def _start_next_batch(self, now: int) -> None:
        if self._current is not None or not self._queue:
            return
        self._current = self._queue.popleft()
        self._current.record.t_start = now
        self._next_issue_at = now
        self._pump(now)

    def _pump(self, now: int) -> None:
        """Issue moves while the rate limit and in-flight cap allow."""
        batch = self._current
        if batch is None:
            return
        if self._pump_armed_at is not None and now >= self._pump_armed_at:
            self._pump_armed_at = None
        while (
            not batch.issued_all
            and self._inflight_pages < self.max_inflight_pages
        ):
            if now < self._next_issue_at:
                if self._pump_armed_at != self._next_issue_at:
                    self._pump_armed_at = self._next_issue_at
                    self.sim.schedule(self._next_issue_at, self._pump)
                return
            page, src, dst = batch.moves[batch.next_index]
            batch.next_index += 1
            self._next_issue_at = now + self.issue_interval
            self._issue_move(now, page, src, dst)

    def _issue_move(self, now: int, page: int, src: int, dst: int) -> None:
        self.directory.begin_move(page, src, dst)
        self._inflight_pages += 1
        request = Packet(
            src=dst,
            dst=src,
            size_flits=self.sim.config.packet_flits(_REQUEST_BYTES),
            payload_bytes=_REQUEST_BYTES,
            kind=PacketKind.MIG_READ,
            tclass=self.tclass,
            measured=False,
            context=(page, src, dst),
        )
        self.sim.send(request, now)

    # -- delivery handling --------------------------------------------------

    def _on_delivery(self, packet: Packet, now: int) -> None:
        if packet.kind is PacketKind.MIG_READ:
            self._serve_pull(packet, now)
        elif packet.kind is PacketKind.MIG_DATA:
            self._receive_chunk(packet, now)

    def _serve_pull(self, packet: Packet, now: int) -> None:
        """Old owner: DRAM-read the page, stream it out in chunks."""
        page, src, dst = packet.context
        local = self.mapper.local_offset(self.mapper.page_addr(page))
        ready = self.memory_node(src).service_bulk(now, local, self.page_bytes)
        chunks = -(-self.page_bytes // self.chunk_bytes)
        batch = self._current
        if batch is None:  # pragma: no cover - batches outlive their pulls
            raise RuntimeError(f"MIG_READ for page {page} with no active batch")
        batch.pending_chunks[page] = chunks
        config = self.sim.config
        for index in range(chunks):
            payload = min(self.chunk_bytes, self.page_bytes - index * self.chunk_bytes)
            data = Packet(
                src=src,
                dst=dst,
                size_flits=config.packet_flits(payload),
                payload_bytes=payload,
                kind=PacketKind.MIG_DATA,
                tclass=self.tclass,
                measured=False,
                context=(page, src, dst),
            )
            self.sim.send(data, ready)
            batch.record.chunks_sent += 1

    def _receive_chunk(self, packet: Packet, now: int) -> None:
        """New owner: last chunk in -> DRAM write -> page lands."""
        page, _src, dst = packet.context
        batch = self._current
        if batch is None:  # pragma: no cover
            raise RuntimeError(f"MIG_DATA for page {page} with no active batch")
        batch.pending_chunks[page] -= 1
        if batch.pending_chunks[page] > 0:
            return
        del batch.pending_chunks[page]
        local = self.mapper.local_offset(self.mapper.page_addr(page))
        done = self.memory_node(dst).service_bulk(now, local, self.page_bytes)
        self.sim.schedule(done, lambda t, p=page, b=batch: self._land(t, p, b))

    def _land(self, now: int, page: int, batch: _Batch) -> None:
        self.directory.land(page, now)
        self._inflight_pages -= 1
        batch.record.pages_moved += 1
        batch.record.bytes_moved += self.page_bytes
        if batch.issued_all and self._inflight_pages == 0:
            batch.record.t_end = now
            self._current = None
            if batch.on_done is not None:
                batch.on_done(now)
            self._start_next_batch(now)
        else:
            self._pump(now)
