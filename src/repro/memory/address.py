"""Physical-address-to-memory-node mapping.

The paper distributes workload data "among the memory nodes based on
their physical address".  We interleave the physical address space
across the *active* nodes at a configurable granularity (default one
4 KB page — coarse enough for row-buffer locality, fine enough to
spread load), so down-scaling the network transparently remaps the
address space onto the remaining nodes.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["AddressMapper"]


class AddressMapper:
    """Interleaves physical addresses across a set of memory nodes.

    Parameters
    ----------
    nodes:
        Active memory-node ids, in interleave order.
    node_capacity_bytes:
        Capacity per node (8 GB per the paper's working example).
    interleave_bytes:
        Contiguous block mapped to one node before moving to the next.
    """

    def __init__(
        self,
        nodes: Sequence[int],
        node_capacity_bytes: int = 8 << 30,
        interleave_bytes: int = 4096,
    ) -> None:
        if not nodes:
            raise ValueError("need at least one memory node")
        if interleave_bytes <= 0 or interleave_bytes & (interleave_bytes - 1):
            raise ValueError(
                f"interleave_bytes must be a positive power of two, got "
                f"{interleave_bytes}"
            )
        self.nodes = list(nodes)
        self.node_capacity_bytes = node_capacity_bytes
        self.interleave_bytes = interleave_bytes
        self._shift = interleave_bytes.bit_length() - 1

    @property
    def total_capacity_bytes(self) -> int:
        """Total memory pool capacity."""
        return self.node_capacity_bytes * len(self.nodes)

    def node_of(self, addr: int) -> int:
        """Memory node serving physical address *addr*."""
        if addr < 0:
            raise ValueError(f"negative address {addr:#x}")
        block = addr >> self._shift
        return self.nodes[block % len(self.nodes)]

    def local_offset(self, addr: int) -> int:
        """Byte offset of *addr* within its node's local address space."""
        block = addr >> self._shift
        local_block = block // len(self.nodes)
        return (local_block << self._shift) | (addr & (self.interleave_bytes - 1))

    def rebalance(self, nodes: Sequence[int]) -> "AddressMapper":
        """Mapper for a new active node set (post-reconfiguration)."""
        return AddressMapper(
            nodes,
            node_capacity_bytes=self.node_capacity_bytes,
            interleave_bytes=self.interleave_bytes,
        )
