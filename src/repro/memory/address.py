"""Physical-address-to-memory-node mapping.

The paper distributes workload data "among the memory nodes based on
their physical address".  We interleave the physical address space
across the memory nodes at a configurable granularity (default one
4 KB page — coarse enough for row-buffer locality, fine enough to
spread load).

Elasticity makes the mapping two-level.  Every page has a *home* node
fixed by round-robin interleaving over the full node list; while the
home is active the page lives there.  When nodes power-gate out of the
network, only the pages homed on the departing nodes are *spilled* to
surviving nodes, chosen by rendezvous (highest-random-weight) hashing —
so a reconfiguration relocates exactly the data that had nowhere else
to live, never the whole address space.  Rendezvous hashing keeps the
spill assignment stable under further departures: gating a second batch
moves only pages whose current owner departed, not every previously
spilled page.  This is what makes the migration delta between two
mapper generations (:func:`migration_delta`) proportional to the gated
capacity, matching what moving real data through the network costs
(:mod:`repro.memory.migration`).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["AddressMapper", "migration_delta"]

_M64 = (1 << 64) - 1


def _mix(x: int) -> int:
    """SplitMix64 finalizer: deterministic, process-independent mixing."""
    x = (x + 0x9E3779B97F4A7C15) & _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return x ^ (x >> 31)


class AddressMapper:
    """Interleaves physical addresses across a set of memory nodes.

    Parameters
    ----------
    nodes:
        Memory-node ids in interleave order.  These become the *home*
        order: page ``p`` is homed on ``nodes[p % len(nodes)]``.
    node_capacity_bytes:
        Capacity per node (8 GB per the paper's working example).
    interleave_bytes:
        Contiguous block (page) mapped to one node before moving to the
        next.  This is also the migration granularity.
    active:
        Currently active subset of ``nodes`` (default: all).  Pages
        homed on an inactive node spill to an active one via rendezvous
        hashing.  Use :meth:`rebalance` to derive down/up-scaled
        mappers rather than passing this directly.
    """

    def __init__(
        self,
        nodes: Sequence[int],
        node_capacity_bytes: int = 8 << 30,
        interleave_bytes: int = 4096,
        active: Sequence[int] | None = None,
    ) -> None:
        if not nodes:
            raise ValueError("need at least one memory node")
        if interleave_bytes <= 0 or interleave_bytes & (interleave_bytes - 1):
            raise ValueError(
                f"interleave_bytes must be a positive power of two, got "
                f"{interleave_bytes}"
            )
        self.home = list(nodes)
        if len(set(self.home)) != len(self.home):
            raise ValueError("duplicate node ids in interleave order")
        if active is None:
            active = self.home
        active_set = set(active)
        self._active = [n for n in self.home if n in active_set]
        if not self._active:
            raise ValueError("need at least one active memory node")
        if len(self._active) != len(active_set):
            missing = sorted(active_set - set(self.home))
            raise ValueError(f"active nodes {missing} are not in the home order")
        self._active_set = frozenset(self._active)
        self.node_capacity_bytes = node_capacity_bytes
        self.interleave_bytes = interleave_bytes
        self._shift = interleave_bytes.bit_length() - 1
        self._spill_cache: dict[int, int] = {}

    # -- structure ----------------------------------------------------------

    @property
    def nodes(self) -> list[int]:
        """Active memory-node ids, in interleave order."""
        return list(self._active)

    @property
    def total_capacity_bytes(self) -> int:
        """Total memory pool capacity of the active nodes."""
        return self.node_capacity_bytes * len(self._active)

    def is_active(self, node: int) -> bool:
        return node in self._active_set

    # -- address resolution -------------------------------------------------

    def page_of(self, addr: int) -> int:
        """Page (interleave block) index containing *addr*."""
        if addr < 0:
            raise ValueError(f"negative address {addr:#x}")
        return addr >> self._shift

    def page_addr(self, page: int) -> int:
        """Base physical address of page *page*."""
        return page << self._shift

    def home_of(self, addr: int) -> int:
        """Home node of *addr* (where it lives on the full network)."""
        return self.home[self.page_of(addr) % len(self.home)]

    def node_of(self, addr: int) -> int:
        """Active memory node serving physical address *addr*."""
        page = self.page_of(addr)
        node = self.home[page % len(self.home)]
        if node in self._active_set:
            return node
        spill = self._spill_cache.get(page)
        if spill is None:
            spill = max(
                self._active, key=lambda n, p=page: _mix(_mix(p) ^ _mix(n))
            )
            self._spill_cache[page] = spill
        return spill

    def local_offset(self, addr: int) -> int:
        """Byte offset of *addr* within its node's local address space.

        Offsets are assigned against the home interleave, so they are
        stable across reconfigurations: a page keeps one local offset
        for life and migration never re-addresses it.  A spilled page
        reuses its home-relative offset on the spill node (modeling the
        spill node's migration remap table; the rare offset collision
        only perturbs modeled row-buffer locality).
        """
        page = self.page_of(addr)
        local_page = page // len(self.home)
        return (local_page << self._shift) | (addr & (self.interleave_bytes - 1))

    # -- elasticity ---------------------------------------------------------

    def rebalance(self, nodes: Sequence[int]) -> "AddressMapper":
        """Mapper for a new active node set (post-reconfiguration).

        When the new set is drawn from this mapper's home order — the
        gate-off / gate-on cases — the result shares the home order, so
        only pages owned by departed (or reclaimed by arrived) nodes
        change placement.  A node set outside the home order (fresh
        deployment onto different hardware) gets a fresh mapper with
        full reinterleaving, as before.
        """
        nodes = list(nodes)
        if set(nodes) <= set(self.home):
            return AddressMapper(
                self.home,
                node_capacity_bytes=self.node_capacity_bytes,
                interleave_bytes=self.interleave_bytes,
                active=nodes,
            )
        return AddressMapper(
            nodes,
            node_capacity_bytes=self.node_capacity_bytes,
            interleave_bytes=self.interleave_bytes,
        )


def migration_delta(
    old: AddressMapper, new: AddressMapper, pages: Iterable[int]
) -> list[tuple[int, int, int]]:
    """Pages that must physically move between two mapper generations.

    Returns ``(page, src, dst)`` triples, sorted by page, for every
    page in *pages* whose serving node differs between *old* and *new*.
    Both mappers must share the interleave granularity — a migration
    changes placement, never page geometry.
    """
    if old.interleave_bytes != new.interleave_bytes:
        raise ValueError(
            "mappers disagree on interleave granularity "
            f"({old.interleave_bytes} vs {new.interleave_bytes})"
        )
    moves: list[tuple[int, int, int]] = []
    for page in sorted(set(pages)):
        addr = old.page_addr(page)
        src = old.node_of(addr)
        dst = new.node_of(addr)
        if src != dst:
            moves.append((page, src, dst))
    return moves
