"""Smoke-run the shell code fences in markdown docs.

Every fenced block tagged ``sh`` (or ``bash``) is executed as a
``bash -e`` script from the repository root, with ``PYTHONPATH=src``
and a ``repro`` shim (``python -m repro``) prepended so documented
commands run without installation.  Blocks tagged ``sh noexec`` are
skipped — reserved for commands that are too slow or mutate the
environment (``pip install``, full test suites, paper-scale grids) —
and untagged/other-language fences (output transcripts, JSON, python)
are ignored.  GitHub renders ``sh noexec`` identically to ``sh``, so
skipping costs the reader nothing.

Usage::

    python tools/check_docs.py README.md docs/*.md
    python tools/check_docs.py --list README.md     # show blocks only

Exit status is nonzero if any block fails, printing the failing block
and its output — this is the docs CI gate, keeping every copy-pasteable
command in README/docs actually runnable.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

PREAMBLE = """\
set -e
export PYTHONPATH="{repo}/src${{PYTHONPATH:+:$PYTHONPATH}}"
cd "{repo}"
repro() {{ python -m repro "$@"; }}
"""

RUN_TAGS = {"sh", "bash"}
SKIP_TAGS = {"sh noexec", "bash noexec"}


def extract_blocks(path: Path) -> list[tuple[int, str, str]]:
    """Return (start_line, info_string, body) for every fenced block."""
    blocks = []
    info = None
    body: list[str] = []
    start = 0
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        stripped = line.strip()
        if stripped.startswith("```"):
            if info is None:
                info = stripped[3:].strip()
                start = lineno
                body = []
            else:
                blocks.append((start, info, "\n".join(body)))
                info = None
        elif info is not None:
            body.append(line)
    if info is not None:
        raise SystemExit(f"{path}: unterminated code fence at line {start}")
    return blocks


def run_block(body: str, timeout: float) -> subprocess.CompletedProcess:
    script = PREAMBLE.format(repo=REPO_ROOT) + body + "\n"
    return subprocess.run(
        ["bash", "-c", script],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=REPO_ROOT,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", help="markdown files to check")
    parser.add_argument(
        "--timeout", type=float, default=600.0,
        help="per-block timeout in seconds (default 600)",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list runnable/skipped blocks without executing",
    )
    args = parser.parse_args(argv)

    failures = 0
    ran = skipped = 0
    for name in args.files:
        path = Path(name)
        if not path.exists():
            print(f"FAIL {name}: no such file")
            failures += 1
            continue
        for start, info, body in extract_blocks(path):
            tag = info.strip().lower()
            if tag in SKIP_TAGS:
                skipped += 1
                if args.list:
                    print(f"skip {name}:{start} [{info}]")
                continue
            if tag not in RUN_TAGS:
                continue
            if args.list:
                print(f"run  {name}:{start} [{info}]")
                continue
            ran += 1
            print(f"run  {name}:{start} ...", flush=True)
            try:
                proc = run_block(body, args.timeout)
            except subprocess.TimeoutExpired:
                print(f"FAIL {name}:{start}: timed out after "
                      f"{args.timeout:.0f}s\n{body}")
                failures += 1
                continue
            if proc.returncode != 0:
                failures += 1
                print(f"FAIL {name}:{start} (exit {proc.returncode})")
                print("  | " + body.replace("\n", "\n  | "))
                tail = (proc.stdout + proc.stderr).strip().splitlines()[-20:]
                for line in tail:
                    print(f"  > {line}")
    if args.list:
        return 0
    print(f"docs check: {ran} blocks ran, {skipped} skipped, "
          f"{failures} failed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
